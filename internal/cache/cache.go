// Package cache implements the set-associative cache model used for the
// private L1/L2 caches and the shared, way-partitionable LLC, plus the MSHR
// file that bounds outstanding misses. Only tags are modelled; the simulator
// never moves data, it moves timing.
package cache

import (
	"fmt"
	"math/bits"

	"pivot/internal/mem"
	"pivot/internal/stats"
)

// Config describes one cache level.
type Config struct {
	Name      string
	SizeBytes int
	Ways      int
	LineBytes int
	HitCycles int // lookup latency on a hit
	MSHRs     int // max outstanding misses
}

// Validate reports a descriptive error for impossible geometries.
func (c Config) Validate() error {
	switch {
	case c.SizeBytes <= 0 || c.Ways <= 0 || c.LineBytes <= 0:
		return fmt.Errorf("cache %s: non-positive geometry", c.Name)
	case c.SizeBytes%(c.Ways*c.LineBytes) != 0:
		return fmt.Errorf("cache %s: size %d not divisible by ways*line", c.Name, c.SizeBytes)
	default:
		sets := c.SizeBytes / (c.Ways * c.LineBytes)
		if sets&(sets-1) != 0 {
			return fmt.Errorf("cache %s: set count %d not a power of two", c.Name, sets)
		}
	}
	return nil
}

// Stats counts per-cache accesses, split by LC/BE origin so experiments can
// report per-task miss rates.
type Stats struct {
	Hits   uint64
	Misses uint64
}

// Line-meta bits (one byte per line in Cache.meta).
const (
	metaValid = 1 << 0
	metaDirty = 1 << 1
)

// invalidTag occupies the tags slot of every invalid line, so the Lookup fast
// path is a pure tag scan — no per-way metadata load just to reject a stale
// tag. A real tag would need a block address in the top 64 - lineBits bits of
// the address space; no modelled workload allocates there. The meta valid bit
// stays authoritative for serialisation; New, Insert, Invalidate and
// RestoreState keep the two representations coherent.
const invalidTag = ^uint64(0)

// Cache is a set-associative, LRU, write-back (timing-only) cache.
// It is not safe for concurrent use; the simulator is single-goroutine.
//
// Lines are stored structure-of-arrays, set-major: the Lookup fast path
// scans a set's `ways` consecutive tags (one or two cache lines of the
// host's memory) and touches the metadata byte only on a tag match. The
// array-of-structs layout this replaced dragged valid/dirty/part/lru through
// the scan for every probe, and Lookup+Insert were the hottest simulator
// leaves under bandwidth-saturated mixes.
type Cache struct {
	cfg      Config
	tags     []uint64 // [set*ways+way]
	lru      []uint64 // last-touch stamp; larger = more recent
	meta     []uint8  // metaValid | metaDirty
	part     []mem.PartID
	ways     int
	setMask  uint64
	lineBits uint
	stamp    uint64

	// wayMask[p] restricts which ways PartID p may *allocate* into
	// (lookups hit in any way, matching Intel CAT semantics).
	// A zero mask means "all ways allowed".
	wayMask [256]uint64

	Stats     Stats
	PartStats [8]Stats // indexed by PartID for small machines
}

// New builds a cache from cfg, rejecting impossible geometries with a
// descriptive error.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nsets := cfg.SizeBytes / (cfg.Ways * cfg.LineBytes)
	n := nsets * cfg.Ways
	c := &Cache{
		cfg:     cfg,
		tags:    make([]uint64, n),
		lru:     make([]uint64, n),
		meta:    make([]uint8, n),
		part:    make([]mem.PartID, n),
		ways:    cfg.Ways,
		setMask: uint64(nsets - 1),
	}
	for j := range c.tags {
		c.tags[j] = invalidTag
	}
	for b := cfg.LineBytes; b > 1; b >>= 1 {
		c.lineBits++
	}
	return c, nil
}

// MustNew is New panicking on error, for callers whose configuration was
// already validated.
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// SetWayMask restricts PartID p to allocate only into ways whose bit is set
// in mask. Passing 0 restores "all ways". This models Intel CAT / MPAM cache
// portion partitioning.
func (c *Cache) SetWayMask(p mem.PartID, mask uint64) {
	full := uint64(1)<<uint(c.ways) - 1
	c.wayMask[p] = mask & full
}

// WayMask returns the allocation mask for PartID p (0 = unrestricted).
func (c *Cache) WayMask(p mem.PartID) uint64 { return c.wayMask[p] }

// index returns the first line slot of addr's set and the (full block
// address) tag — simple and unambiguous.
func (c *Cache) index(addr uint64) (base int, tag uint64) {
	blk := addr >> c.lineBits
	return int(blk&c.setMask) * c.ways, blk
}

func (c *Cache) bumpStats(p mem.PartID, hit bool) {
	if hit {
		c.Stats.Hits++
	} else {
		c.Stats.Misses++
	}
	if int(p) < len(c.PartStats) {
		if hit {
			c.PartStats[p].Hits++
		} else {
			c.PartStats[p].Misses++
		}
	}
}

// Lookup probes the cache for addr, updating LRU on a hit.
// It returns whether the access hit.
func (c *Cache) Lookup(addr uint64, p mem.PartID) bool {
	base, tag := c.index(addr)
	c.stamp++
	// Reslice the set once so the scan loop runs without bounds checks;
	// invalid lines hold invalidTag, so a tag match alone proves a hit.
	for i, t := range c.tags[base : base+c.ways] {
		if t == tag {
			c.lru[base+i] = c.stamp
			c.bumpStats(p, true)
			return true
		}
	}
	c.bumpStats(p, false)
	return false
}

// SkipMissProbes applies the side effects of n elided Lookup calls that are
// known to miss (a core re-probing its L1 for a refused memory op under
// skip-ahead): the LRU stamp advances and the miss counters grow exactly as
// n dense Lookups would have left them. Valid only while no line's recency
// actually changes, which holds because a missing probe touches no line.
func (c *Cache) SkipMissProbes(p mem.PartID, n uint64) {
	c.stamp += n
	c.Stats.Misses += n
	if int(p) < len(c.PartStats) {
		c.PartStats[p].Misses += n
	}
}

// Touch is Lookup followed, on a hit, by Insert(addr, p, dirty=true) — the
// store-hit fast path — collapsed into one set scan. Bit-compatibility with
// the two-call sequence requires the stamp to advance twice on a hit (Lookup
// bumps it, then Insert bumps it again before refreshing the line), so the
// line's recency lands on the second stamp. On a miss only the Lookup half
// happened, so the stamp advances once and the miss counters grow.
func (c *Cache) Touch(addr uint64, p mem.PartID) bool {
	base, tag := c.index(addr)
	c.stamp++
	for i, t := range c.tags[base : base+c.ways] {
		if t == tag {
			c.bumpStats(p, true)
			c.stamp++
			c.lru[base+i] = c.stamp
			c.meta[base+i] |= metaDirty
			return true
		}
	}
	c.bumpStats(p, false)
	return false
}

// Contains probes without updating LRU or statistics.
func (c *Cache) Contains(addr uint64) bool {
	base, tag := c.index(addr)
	for _, t := range c.tags[base : base+c.ways] {
		if t == tag {
			return true
		}
	}
	return false
}

// Insert fills addr into the cache on behalf of PartID p, honouring p's way
// mask, and returns the evicted block address and whether an eviction of a
// valid line occurred.
func (c *Cache) Insert(addr uint64, p mem.PartID, dirty bool) (evicted uint64, wasValid bool) {
	base, tag := c.index(addr)
	c.stamp++
	allowed := c.wayMask[p]
	if allowed == 0 {
		allowed = uint64(1)<<uint(c.ways) - 1
	}

	// Refresh if the line is already present (e.g. a racing fill) — a pure
	// tag scan, branch-predictable and free of mask tests.
	tags := c.tags[base : base+c.ways]
	meta := c.meta[base : base+c.ways : base+c.ways]
	lru := c.lru[base : base+c.ways : base+c.ways]
	for i, t := range tags {
		if t == tag {
			lru[i] = c.stamp
			if dirty {
				meta[i] |= metaDirty
			}
			return 0, false
		}
	}
	// Miss: pick the victim by walking only the allowed ways' set bits —
	// the first (lowest-index) invalid allowed way wins outright, else the
	// least-recently-used allowed way (first minimum, matching the ascending
	// scan the dense-mask version did).
	victim := -1
	var victimLRU uint64 = ^uint64(0)
	for a := allowed; a != 0; a &= a - 1 {
		i := bits.TrailingZeros64(a)
		if i >= c.ways {
			break
		}
		if tags[i] == invalidTag {
			victim = i
			break
		}
		if lru[i] < victimLRU {
			victim, victimLRU = i, lru[i]
		}
	}
	if victim < 0 {
		// Mask excluded every way; fall back to way 0 to stay functional.
		victim = 0
	}
	j := base + victim
	if c.meta[j]&metaValid != 0 {
		evicted = c.tags[j] << c.lineBits
		wasValid = true
	}
	c.tags[j] = tag
	c.lru[j] = c.stamp
	c.part[j] = p
	c.meta[j] = metaValid
	if dirty {
		c.meta[j] |= metaDirty
	}
	return evicted, wasValid
}

// Invalidate removes addr if present, returning whether it was there.
func (c *Cache) Invalidate(addr uint64) bool {
	base, tag := c.index(addr)
	for j := base; j < base+c.ways; j++ {
		if c.tags[j] == tag {
			c.meta[j] &^= metaValid
			c.tags[j] = invalidTag
			return true
		}
	}
	return false
}

// RegisterStats registers the cache's instruments under prefix (e.g. "llc"):
// hit/miss counters, a miss-rate series, and the running miss-rate gauge.
func (c *Cache) RegisterStats(reg *stats.Registry, prefix string) {
	st := &c.Stats
	reg.Counter(prefix+".hits", func() uint64 { return st.Hits })
	reg.Counter(prefix+".misses", func() uint64 { return st.Misses })
	reg.Rate(prefix+".miss_rate_epoch", func() uint64 { return st.Misses })
	reg.Gauge(prefix+".miss_rate", func() float64 { return st.MissRate() })
}

// MissRate returns misses/(hits+misses), or 0 for an untouched cache.
func (s Stats) MissRate() float64 {
	t := s.Hits + s.Misses
	if t == 0 {
		return 0
	}
	return float64(s.Misses) / float64(t)
}

// ResetStats zeroes the access counters (used between warm-up and the
// measured region of a simulation).
func (c *Cache) ResetStats() {
	c.Stats = Stats{}
	for i := range c.PartStats {
		c.PartStats[i] = Stats{}
	}
}
