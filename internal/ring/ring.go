// Package ring provides a power-of-two circular buffer used by the queued
// components on the simulator's hot path (station and memory-controller
// queues). A FIFO pop from a slice costs an O(n) copy per element served;
// under bandwidth saturation those copies dominated the profile, and a head
// index makes them O(1) without changing any serialised format (components
// snapshot through dedicated state structs, never the live buffer).
package ring

// Ring is a circular buffer over a power-of-two backing slice. The zero
// value is unusable; call New.
type Ring[T any] struct {
	buf  []T
	mask int
	head int
	n    int
}

// New returns a ring with capacity for at least capHint elements.
func New[T any](capHint int) Ring[T] {
	c := 8
	for c < capHint {
		c <<= 1
	}
	return Ring[T]{buf: make([]T, c), mask: c - 1}
}

// Len reports the number of queued elements.
func (r *Ring[T]) Len() int { return r.n }

// At returns a pointer to the i-th element in FIFO order (0 = oldest).
func (r *Ring[T]) At(i int) *T { return &r.buf[(r.head+i)&r.mask] }

// Push appends v at the tail, growing the backing slice if full.
func (r *Ring[T]) Push(v T) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&r.mask] = v
	r.n++
}

// PopHead removes and returns the oldest element.
func (r *Ring[T]) PopHead() T {
	v := r.buf[r.head]
	var zero T
	r.buf[r.head] = zero // drop references for GC
	r.head = (r.head + 1) & r.mask
	r.n--
	return v
}

// RemoveAt deletes the i-th element in FIFO order, shifting the shorter side.
func (r *Ring[T]) RemoveAt(i int) {
	if i <= r.n-1-i {
		// Shift the head side toward the gap.
		for j := i; j > 0; j-- {
			*r.At(j) = *r.At(j - 1)
		}
		var zero T
		r.buf[r.head] = zero
		r.head = (r.head + 1) & r.mask
	} else {
		for j := i; j < r.n-1; j++ {
			*r.At(j) = *r.At(j + 1)
		}
		var zero T
		*r.At(r.n - 1) = zero
	}
	r.n--
}

// Slices returns the queued elements as up to two contiguous segments in
// FIFO order, for scans too hot to pay At's index arithmetic per element.
// The segments alias the backing slice: valid until the next mutation.
func (r *Ring[T]) Slices() ([]T, []T) {
	if r.head+r.n <= len(r.buf) {
		return r.buf[r.head : r.head+r.n], nil
	}
	return r.buf[r.head:], r.buf[:r.head+r.n-len(r.buf)]
}

// Reset empties the ring, zeroing the backing slice so no references leak.
func (r *Ring[T]) Reset() {
	var zero T
	for i := 0; i < r.n; i++ {
		*r.At(i) = zero
	}
	r.head, r.n = 0, 0
}

func (r *Ring[T]) grow() {
	n := len(r.buf) * 2
	if n == 0 {
		n = 8 // zero-value ring: usable, just unsized
	}
	nb := make([]T, n)
	for i := 0; i < r.n; i++ {
		nb[i] = *r.At(i)
	}
	r.buf = nb
	r.mask = len(nb) - 1
	r.head = 0
}
