package ring

import "testing"

func TestFIFO(t *testing.T) {
	r := New[int](3)
	for i := 0; i < 100; i++ {
		r.Push(i)
	}
	if r.Len() != 100 {
		t.Fatalf("Len = %d, want 100", r.Len())
	}
	for i := 0; i < 100; i++ {
		if got := r.PopHead(); got != i {
			t.Fatalf("PopHead = %d, want %d", got, i)
		}
	}
	if r.Len() != 0 {
		t.Fatalf("Len = %d after drain", r.Len())
	}
}

func TestWrapAround(t *testing.T) {
	r := New[int](8)
	for round := 0; round < 50; round++ {
		for i := 0; i < 5; i++ {
			r.Push(round*10 + i)
		}
		for i := 0; i < 5; i++ {
			if got := r.PopHead(); got != round*10+i {
				t.Fatalf("round %d: PopHead = %d, want %d", round, got, round*10+i)
			}
		}
	}
}

func TestRemoveAt(t *testing.T) {
	for remove := 0; remove < 7; remove++ {
		r := New[int](8)
		// Force a non-zero head so both shift directions cross the wrap.
		for i := 0; i < 6; i++ {
			r.Push(-1)
		}
		for i := 0; i < 6; i++ {
			r.PopHead()
		}
		for i := 0; i < 7; i++ {
			r.Push(i)
		}
		r.RemoveAt(remove)
		want := 0
		for i := 0; i < 6; i++ {
			if want == remove {
				want++
			}
			if got := *r.At(i); got != want {
				t.Fatalf("remove %d: At(%d) = %d, want %d", remove, i, got, want)
			}
			want++
		}
	}
}

func TestReset(t *testing.T) {
	r := New[*int](4)
	v := 7
	r.Push(&v)
	r.Push(&v)
	r.Reset()
	if r.Len() != 0 {
		t.Fatalf("Len = %d after Reset", r.Len())
	}
	r.Push(&v)
	if *r.PopHead() != 7 {
		t.Fatal("ring unusable after Reset")
	}
}
