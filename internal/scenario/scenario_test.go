package scenario

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pivot/internal/load"
	"pivot/internal/workload"
)

// TestParseErrors drives the codec and validator through every rejection
// class, checking both the field path and the message substance.
func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		path string // FieldError.Path
		msg  string // substring of FieldError.Msg
	}{
		{
			name: "unknown top-level field",
			doc: `{"version":1,"name":"t","policy":"Default","bogus":3,
			       "tasks":[{"kind":"lc","app":"silo","load_pct":70}]}`,
			path: "", msg: `unknown field "bogus"`,
		},
		{
			name: "unknown machine field",
			doc: `{"version":1,"name":"t","policy":"Default",
			       "machine":{"presett":"kunpeng"},
			       "tasks":[{"kind":"lc","app":"silo","load_pct":70}]}`,
			path: "machine", msg: `unknown field "presett"`,
		},
		{
			name: "unknown options field",
			doc: `{"version":1,"name":"t","policy":"Default",
			       "options":{"rrbp_size":16},
			       "tasks":[{"kind":"lc","app":"silo","load_pct":70}]}`,
			path: "options", msg: `unknown field "rrbp_size"`,
		},
		{
			name: "unknown task field",
			doc: `{"version":1,"name":"t","policy":"Default",
			       "tasks":[{"kind":"lc","app":"silo","loadpct":70}]}`,
			path: "tasks[0]", msg: `unknown field "loadpct"`,
		},
		{
			name: "unknown load field",
			doc: `{"version":1,"name":"t","policy":"Default",
			       "tasks":[{"kind":"lc","app":"silo","load_pct":70,
			                 "load":{"theta":0.5}}]}`,
			path: "tasks[0].load", msg: `unknown field "theta"`,
		},
		{
			name: "unknown load phase field",
			doc: `{"version":1,"name":"t","policy":"Default",
			       "tasks":[{"kind":"lc","app":"silo","load_pct":70,
			                 "load":{"phases":[{"shape":"flat","cycles":10,"scale":1},
			                                   {"shape":"flat","cycles":10,"slope":2}]}}]}`,
			path: "tasks[0].load.phases[1]", msg: `unknown field "slope"`,
		},
		{
			name: "unknown lc_params field",
			doc: `{"version":1,"name":"t","policy":"Default",
			       "tasks":[{"kind":"lc","lc_params":{"name":"x","chase_depth":4,
			                 "chase_lines":1024,"chase_pcs":4,"mlp":2},"load_pct":70}]}`,
			path: "tasks[0].lc_params", msg: `unknown field "mlp"`,
		},
		{
			name: "unknown sweep axis field",
			doc: `{"version":1,"name":"t","policy":"Default",
			       "tasks":[{"kind":"lc","app":"silo","load_pct":70}],
			       "sweep":[{"param":"policy","values":["Default"],"step":2}]}`,
			path: "sweep[0]", msg: `unknown field "step"`,
		},
		{
			name: "type error on scalar",
			doc: `{"version":"one","name":"t","policy":"Default",
			       "tasks":[{"kind":"lc","app":"silo","load_pct":70}]}`,
			path: "version", msg: "cannot use JSON string here",
		},
		{
			name: "type error inside nested struct",
			doc: `{"version":1,"name":"t","policy":"Default",
			       "machine":{"cores":"eight"},
			       "tasks":[{"kind":"lc","app":"silo","load_pct":70}]}`,
			path: "machine.cores", msg: "cannot use JSON string here",
		},
		{
			name: "bad version",
			doc: `{"version":2,"name":"t","policy":"Default",
			       "tasks":[{"kind":"lc","app":"silo","load_pct":70}]}`,
			path: "version", msg: "must be 1",
		},
		{
			name: "missing name",
			doc: `{"version":1,"policy":"Default",
			       "tasks":[{"kind":"lc","app":"silo","load_pct":70}]}`,
			path: "name", msg: "must be set",
		},
		{
			name: "bad machine preset",
			doc: `{"version":1,"name":"t","policy":"Default",
			       "machine":{"preset":"epyc"},
			       "tasks":[{"kind":"lc","app":"silo","load_pct":70}]}`,
			path: "machine.preset", msg: `unknown preset "epyc"`,
		},
		{
			name: "bad policy",
			doc: `{"version":1,"name":"t","policy":"pivot",
			       "tasks":[{"kind":"lc","app":"silo","load_pct":70}]}`,
			path: "policy", msg: `unknown policy "pivot"`,
		},
		{
			name: "bad disable_msc",
			doc: `{"version":1,"name":"t","policy":"FullPath",
			       "options":{"disable_msc":"L2"},
			       "tasks":[{"kind":"lc","app":"silo","load_pct":70}]}`,
			path: "options.disable_msc", msg: `unknown MSC "L2"`,
		},
		{
			name: "no tasks",
			doc:  `{"version":1,"name":"t","policy":"Default","tasks":[]}`,
			path: "tasks", msg: "at least one task",
		},
		{
			name: "bad task kind",
			doc: `{"version":1,"name":"t","policy":"Default",
			       "tasks":[{"kind":"batch","app":"ibench"}]}`,
			path: "tasks[0].kind", msg: `must be "lc" or "be"`,
		},
		{
			name: "bad LC app name",
			doc: `{"version":1,"name":"t","policy":"Default",
			       "tasks":[{"kind":"lc","app":"redis","load_pct":70}]}`,
			path: "tasks[0].app", msg: `unknown LC application "redis"`,
		},
		{
			name: "bad BE app name",
			doc: `{"version":1,"name":"t","policy":"Default",
			       "tasks":[{"kind":"lc","app":"silo","load_pct":70},
			                {"kind":"be","app":"memcached"}]}`,
			path: "tasks[1].app", msg: `unknown BE application "memcached"`,
		},
		{
			name: "app and inline params together",
			doc: `{"version":1,"name":"t","policy":"Default",
			       "tasks":[{"kind":"lc","app":"silo","load_pct":70,
			                 "lc_params":{"name":"x","chase_depth":4,"chase_lines":64,"chase_pcs":2}}]}`,
			path: "tasks[0]", msg: "mutually exclusive",
		},
		{
			name: "neither app nor inline params",
			doc: `{"version":1,"name":"t","policy":"Default",
			       "tasks":[{"kind":"lc","load_pct":70}]}`,
			path: "tasks[0]", msg: "set app or inline params",
		},
		{
			name: "be_params on an lc task",
			doc: `{"version":1,"name":"t","policy":"Default",
			       "tasks":[{"kind":"lc","be_params":{"name":"x"},"load_pct":70}]}`,
			path: "tasks[0].be_params", msg: `not allowed on an "lc" task`,
		},
		{
			name: "custom name shadows catalogue app",
			doc: `{"version":1,"name":"t","policy":"Default",
			       "tasks":[{"kind":"lc","lc_params":{"name":"silo","chase_depth":4,
			                 "chase_lines":64,"chase_pcs":2},"load_pct":70}]}`,
			path: "tasks[0].lc_params.name", msg: "shadows a catalogue LC application",
		},
		{
			name: "duplicate custom name",
			doc: `{"version":1,"name":"t","policy":"Default",
			       "tasks":[{"kind":"lc","lc_params":{"name":"x","chase_depth":4,
			                 "chase_lines":64,"chase_pcs":2},"load_pct":70},
			                {"kind":"be","be_params":{"name":"x","stream_frac":1,
			                 "stream_lines":64,"mlp":2,"pcs":2}}]}`,
			path: "tasks[1].be_params.name", msg: `already defined at tasks[0].lc_params.name`,
		},
		{
			name: "threads on an lc task",
			doc: `{"version":1,"name":"t","policy":"Default",
			       "tasks":[{"kind":"lc","app":"silo","load_pct":70,"threads":2}]}`,
			path: "tasks[0].threads", msg: `only valid on "be" tasks`,
		},
		{
			name: "load_pct on a be task",
			doc: `{"version":1,"name":"t","policy":"Default",
			       "tasks":[{"kind":"be","app":"ibench","load_pct":70}]}`,
			path: "tasks[0].load_pct", msg: `only valid on "lc" tasks`,
		},
		{
			name: "load_pct out of range",
			doc: `{"version":1,"name":"t","policy":"Default",
			       "tasks":[{"kind":"lc","app":"silo","load_pct":120}]}`,
			path: "tasks[0].load_pct", msg: "must be in 1..100",
		},
		{
			name: "load_pct and interarrival together",
			doc: `{"version":1,"name":"t","policy":"Default",
			       "tasks":[{"kind":"lc","app":"silo","load_pct":70,"interarrival":800}]}`,
			path: "tasks[0]", msg: "mutually exclusive",
		},
		{
			name: "task count over core budget",
			doc: `{"version":1,"name":"t","policy":"Default",
			       "machine":{"cores":4},
			       "tasks":[{"kind":"lc","app":"silo","load_pct":70},
			                {"kind":"be","app":"ibench","threads":7}]}`,
			path: "tasks", msg: "mix needs 8 cores but the machine has 4",
		},
		{
			name: "empty sweep axis",
			doc: `{"version":1,"name":"t","policy":"Default",
			       "tasks":[{"kind":"lc","app":"silo","load_pct":70}],
			       "sweep":[{"param":"policy","values":[]}]}`,
			path: "sweep[0].values", msg: `empty sweep axis "policy"`,
		},
		{
			name: "duplicate sweep parameter",
			doc: `{"version":1,"name":"t","policy":"Default",
			       "tasks":[{"kind":"lc","app":"silo","load_pct":70}],
			       "sweep":[{"param":"policy","values":["Default"]},
			                {"param":"policy","values":["PIVOT"]}]}`,
			path: "sweep[1]", msg: `parameter "policy" already swept by sweep[0]`,
		},
		{
			name: "unknown sweep parameter",
			doc: `{"version":1,"name":"t","policy":"Default",
			       "tasks":[{"kind":"lc","app":"silo","load_pct":70}],
			       "sweep":[{"param":"frequency","values":[1]}]}`,
			path: "sweep[frequency].values[0]", msg: `unknown sweep parameter "frequency"`,
		},
		{
			name: "sweep task index out of range",
			doc: `{"version":1,"name":"t","policy":"Default",
			       "tasks":[{"kind":"lc","app":"silo","load_pct":70}],
			       "sweep":[{"param":"tasks[3].app","values":["moses"]}]}`,
			path: "sweep[tasks[3].app].values[0]", msg: "task index 3 out of range",
		},
		{
			name: "sweep LC field of a BE task",
			doc: `{"version":1,"name":"t","policy":"Default",
			       "tasks":[{"kind":"be","app":"ibench"}],
			       "sweep":[{"param":"tasks[0].load_pct","values":[30]}]}`,
			path: "sweep[tasks[0].load_pct].values[0]", msg: "sweeps an LC field",
		},
		{
			name: "sweep value type error",
			doc: `{"version":1,"name":"t","policy":"Default",
			       "tasks":[{"kind":"lc","app":"silo","load_pct":70}],
			       "sweep":[{"param":"tasks[0].load_pct","values":["high"]}]}`,
			path: "sweep[tasks[0].load_pct].values[0]", msg: "cannot use JSON string here",
		},
		{
			name: "sweep value out of range",
			doc: `{"version":1,"name":"t","policy":"Default",
			       "tasks":[{"kind":"lc","app":"silo","load_pct":70}],
			       "sweep":[{"param":"tasks[0].load_pct","values":[0]}]}`,
			path: "sweep[tasks[0].load_pct].values[0]", msg: "must be in 1..100",
		},
		{
			name: "sweep app value not in catalogue",
			doc: `{"version":1,"name":"t","policy":"Default",
			       "tasks":[{"kind":"lc","app":"silo","load_pct":70}],
			       "sweep":[{"param":"tasks[0].app","values":["redis"]}]}`,
			path: "sweep[tasks[0].app].values[0]", msg: `unknown LC application "redis"`,
		},
		{
			name: "tuple arity mismatch",
			doc: `{"version":1,"name":"t","policy":"Default",
			       "tasks":[{"kind":"lc","app":"silo","load_pct":70},
			                {"kind":"lc","app":"moses","load_pct":70}],
			       "sweep":[{"params":["tasks[0].app","tasks[1].app"],
			                 "values":[["silo"]]}]}`,
			path: "sweep[tasks[0].app,tasks[1].app].values[0]",
			msg:  "tuple has 1 elements for 2 params",
		},
		{
			name: "load zipf_theta out of range",
			doc: `{"version":1,"name":"t","policy":"Default",
			       "tasks":[{"kind":"lc","app":"silo","load_pct":70,
			                 "load":{"zipf_theta":1.5}}]}`,
			path: "tasks[0].load.zipf_theta", msg: "must be in [0, 1)",
		},
		{
			name: "load shaping without base rate",
			doc: `{"version":1,"name":"t","policy":"Default",
			       "tasks":[{"kind":"lc","app":"silo","load_pct":70,
			                 "load":{"phases":[{"shape":"flat","cycles":100,"scale":1}]}},
			                {"kind":"lc","app":"moses",
			                 "load":{"phases":[{"shape":"flat","cycles":100,"scale":1}]}}]}`,
			path: "tasks[1].load", msg: "needs a base rate",
		},
		{
			name: "load phase field not valid for shape",
			doc: `{"version":1,"name":"t","policy":"Default",
			       "tasks":[{"kind":"lc","app":"silo","load_pct":70,
			                 "load":{"phases":[{"shape":"flat","cycles":100,"scale":1,"to":2}]}}]}`,
			path: "tasks[0].load.phases[0].to", msg: `not valid for shape "flat"`,
		},
		{
			name: "load unknown shape",
			doc: `{"version":1,"name":"t","policy":"Default",
			       "tasks":[{"kind":"lc","app":"silo","load_pct":70,
			                 "load":{"phases":[{"shape":"square","cycles":100,"scale":1}]}}]}`,
			path: "tasks[0].load.phases[0].shape", msg: `unknown shape "square"`,
		},
		{
			name: "load all phases silent",
			doc: `{"version":1,"name":"t","policy":"Default",
			       "tasks":[{"kind":"lc","app":"silo","load_pct":70,
			                 "load":{"phases":[{"shape":"off","cycles":100}]}}]}`,
			path: "tasks[0].load.phases", msg: "every phase is silent",
		},
		{
			name: "load windows out of order",
			doc: `{"version":1,"name":"t","policy":"Default",
			       "tasks":[{"kind":"lc","app":"silo","load_pct":70,
			                 "load":{"windows":[{"from":0,"until":500},
			                                    {"from":400,"until":900}]}}]}`,
			path: "tasks[0].load.windows[1].from", msg: "ordered and disjoint",
		},
		{
			name: "load stanza on be task",
			doc: `{"version":1,"name":"t","policy":"Default",
			       "tasks":[{"kind":"be","app":"ibench","threads":2,
			                 "load":{"zipf_theta":0.5}}]}`,
			path: "tasks[0].load", msg: `only valid on "lc" tasks`,
		},
		{
			name: "load sweep value out of range",
			doc: `{"version":1,"name":"t","policy":"Default",
			       "tasks":[{"kind":"lc","app":"silo","load_pct":70,
			                 "load":{"zipf_theta":0.5}}],
			       "sweep":[{"param":"tasks[0].load.zipf_theta","values":[0.2,1.0]}]}`,
			path: "sweep[tasks[0].load.zipf_theta].values[1]", msg: "must be in [0, 1)",
		},
		{
			name: "load sweep phase index out of range",
			doc: `{"version":1,"name":"t","policy":"Default",
			       "tasks":[{"kind":"lc","app":"silo","load_pct":70,
			                 "load":{"phases":[{"shape":"flat","cycles":100,"scale":1}]}}],
			       "sweep":[{"param":"tasks[0].load.phases[1].scale","values":[2]}]}`,
			path: "sweep[tasks[0].load.phases[1].scale].values[0]",
			msg:  "phase index 1 out of range",
		},
		{
			name: "axis value breaks core budget",
			doc: `{"version":1,"name":"t","policy":"Default",
			       "machine":{"cores":4},
			       "tasks":[{"kind":"lc","app":"silo","load_pct":70},
			                {"kind":"be","app":"ibench","threads":2}],
			       "sweep":[{"param":"tasks[1].threads","values":[2,6]}]}`,
			path: "sweep[tasks[1].threads].values[1]", msg: "mix needs 7 cores",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.doc))
			if err == nil {
				t.Fatalf("Parse accepted the document")
			}
			var fe *FieldError
			if !errors.As(err, &fe) {
				t.Fatalf("error %v (%T) is not a FieldError", err, err)
			}
			if fe.Path != tc.path {
				t.Errorf("path = %q, want %q (msg %q)", fe.Path, tc.path, fe.Msg)
			}
			if !strings.Contains(fe.Msg, tc.msg) {
				t.Errorf("msg = %q, want substring %q", fe.Msg, tc.msg)
			}
		})
	}
}

// TestParseValid round-trips a full-featured document.
func TestParseValid(t *testing.T) {
	doc := `{
	  "version": 1,
	  "name": "custom-mix",
	  "brief": "a custom LC against iBench",
	  "machine": {"preset": "kunpeng", "cores": 8, "be_ways": 4},
	  "policy": "PIVOT",
	  "options": {"expected_lc_bw": 0.1, "rrbp_entries": 32},
	  "tasks": [
	    {"kind": "lc",
	     "lc_params": {"name": "mini-kv", "chase_depth": 6,
	                   "chase_lines": 4096, "chase_pcs": 4,
	                   "payload_loads": 1, "payload_lines": 256, "payload_pcs": 16,
	                   "alu_per_step": 2, "alu_lat": 1, "stores_per_req": 1},
	     "interarrival": 900},
	    {"kind": "be", "app": "ibench", "threads": 3}
	  ],
	  "warmup": 10000,
	  "measure": 20000,
	  "seed": 7,
	  "sweep": [{"param": "policy", "values": ["Default", "PIVOT"]}]
	}`
	s, err := Parse([]byte(doc))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if s.Name != "custom-mix" || s.Policy != "PIVOT" || s.Seed != 7 {
		t.Errorf("header fields wrong: %+v", s)
	}
	if s.Machine.Preset != PresetKunpeng || s.Machine.BEWays != 4 {
		t.Errorf("machine wrong: %+v", s.Machine)
	}
	if s.Options.RRBPEntries != 32 || s.Options.ExpectedLCBW != 0.1 {
		t.Errorf("options wrong: %+v", s.Options)
	}
	lc := s.Tasks[0]
	if lc.LCParams == nil || lc.LCParams.Name != "mini-kv" || lc.Interarrival != 900 {
		t.Errorf("lc task wrong: %+v", lc)
	}
	wp := lc.LCWorkload()
	if wp.Name != "mini-kv" || wp.ChaseDepth != 6 || wp.ChaseLines != 4096 {
		t.Errorf("LCWorkload conversion wrong: %+v", wp)
	}
	if got := s.Tasks[1].BEWorkload(); got.Name != workload.IBench {
		t.Errorf("BEWorkload conversion wrong: %+v", got)
	}
	if lc.AppName() != "mini-kv" || s.Tasks[1].AppName() != workload.IBench {
		t.Errorf("AppName wrong: %q, %q", lc.AppName(), s.Tasks[1].AppName())
	}
	units, err := s.Expand()
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	if len(units) != 2 {
		t.Fatalf("Expand produced %d units, want 2", len(units))
	}
}

// TestLoad checks the file wrapper, including the filename prefix on errors.
func TestLoad(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.json")
	doc := `{"version":1,"name":"t","policy":"Default",
	         "tasks":[{"kind":"lc","app":"silo","load_pct":70}]}`
	if err := os.WriteFile(good, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(good); err != nil {
		t.Fatalf("Load(good): %v", err)
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"version":1,"nme":"t"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Load(bad)
	if err == nil {
		t.Fatal("Load(bad) succeeded")
	}
	if !strings.Contains(err.Error(), "bad.json") ||
		!strings.Contains(err.Error(), `unknown field "nme"`) {
		t.Errorf("Load(bad) error %q lacks filename or field", err)
	}
	if _, err := Load(filepath.Join(dir, "absent.json")); err == nil {
		t.Error("Load(absent) succeeded")
	}
}

// TestLoadStanza round-trips a scenario exercising every load-model
// feature: parse, canonical-encode fixed point, conversion to the
// simulator spec, and sweeping load fields.
func TestLoadStanza(t *testing.T) {
	doc := `{"version":1,"name":"shapes","policy":"Default",
	  "tasks":[
	    {"kind":"lc","app":"silo","load_pct":70,
	     "load":{"zipf_theta":0.8,
	             "phases":[{"shape":"flat","cycles":200000,"scale":1},
	                       {"shape":"sine","cycles":400000,"scale":1,"amp":0.5,"period":200000},
	                       {"shape":"ramp","cycles":100000,"scale":1,"to":2},
	                       {"shape":"off","cycles":50000}],
	             "repeat":true,
	             "onoff":{"on_mean":50000,"off_mean":25000,"on_scale":1.5},
	             "windows":[{"until":800000},{"from":900000,"until":1500000}]}},
	    {"kind":"be","app":"ibench","threads":2}
	  ],
	  "sweep":[{"param":"tasks[0].load.zipf_theta","values":[0,0.8]},
	           {"param":"tasks[0].load.phases[2].scale","values":[1,0.5]}]}`
	s, err := Parse([]byte(doc))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	enc := s.MustEncode()
	s2, err := Parse(enc)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if enc2 := s2.MustEncode(); !bytes.Equal(enc, enc2) {
		t.Errorf("Encode is not a fixed point:\n%s\n%s", enc, enc2)
	}
	ls := s.Tasks[0].Load.ToLoad()
	if ls.ZipfTheta != 0.8 || !ls.Repeat || len(ls.Phases) != 4 ||
		len(ls.Windows) != 2 || !ls.OnOff.Enabled() {
		t.Errorf("ToLoad conversion wrong: %+v", ls)
	}
	if ls.Phases[1].Shape != load.ShapeSine || ls.Phases[1].Amp != 0.5 ||
		ls.Phases[2].To != 2 || ls.Phases[3].Shape != load.ShapeOff {
		t.Errorf("phase conversion wrong: %+v", ls.Phases)
	}
	if ls.Stationary() {
		t.Error("shaped spec reports Stationary")
	}
	if (load.Spec{Mean: 800}).Shaped() {
		t.Error("bare-mean spec reports Shaped")
	}
	units, err := s.Expand()
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	if len(units) != 4 {
		t.Fatalf("Expand produced %d units, want 4", len(units))
	}
	u := units[3].Scenario
	if u.Tasks[0].Load.ZipfTheta != 0.8 || u.Tasks[0].Load.Phases[2].Scale != 0.5 {
		t.Errorf("sweep did not resolve load fields: %+v", u.Tasks[0].Load)
	}
	// Expansion must deep-copy the stanza: mutating a unit's phases must
	// not touch the source scenario.
	u.Tasks[0].Load.Phases[0].Scale = 99
	if s.Tasks[0].Load.Phases[0].Scale != 1 {
		t.Error("expansion aliased the source load stanza")
	}
}

// TestExpandOrderAndLabels pins the cartesian expansion: first axis
// outermost, labels joined from "param=value" parts.
func TestExpandOrderAndLabels(t *testing.T) {
	s := &Scenario{
		Version: Version, Name: "t", Policy: "Default",
		Tasks: []Task{lcTask(workload.Silo, 70), beTask(workload.IBench, 2)},
		Sweep: []Axis{
			strAxis("policy", "Default", "PIVOT"),
			intAxis("tasks[0].load_pct", 10, 30),
		},
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	units := s.MustExpand()
	want := []struct {
		label  string
		policy string
		load   int
	}{
		{"policy=Default tasks[0].load_pct=10", "Default", 10},
		{"policy=Default tasks[0].load_pct=30", "Default", 30},
		{"policy=PIVOT tasks[0].load_pct=10", "PIVOT", 10},
		{"policy=PIVOT tasks[0].load_pct=30", "PIVOT", 30},
	}
	if len(units) != len(want) {
		t.Fatalf("got %d units, want %d", len(units), len(want))
	}
	for i, w := range want {
		u := units[i]
		if u.Label != w.label {
			t.Errorf("unit %d label = %q, want %q", i, u.Label, w.label)
		}
		if u.Scenario.Policy != w.policy || u.Scenario.Tasks[0].LoadPct != w.load {
			t.Errorf("unit %d resolved to policy=%s load=%d, want %s/%d",
				i, u.Scenario.Policy, u.Scenario.Tasks[0].LoadPct, w.policy, w.load)
		}
		if u.Scenario.Sweep != nil {
			t.Errorf("unit %d still carries sweep axes", i)
		}
	}
	// The original scenario must be untouched by expansion.
	if s.Policy != "Default" || s.Tasks[0].LoadPct != 70 {
		t.Errorf("expansion mutated the source scenario: %+v", s)
	}
}

// TestExpandTupleAxis checks that tuple values set their fields together.
func TestExpandTupleAxis(t *testing.T) {
	s := &Scenario{
		Version: Version, Name: "t", Policy: "Default",
		Tasks: []Task{lcTask(workload.Silo, 40), lcTask(workload.Moses, 40)},
		Sweep: []Axis{
			tupleAxis([]string{"tasks[0].app", "tasks[1].app"},
				[]string{workload.Xapian, workload.ImgDNN},
				[]string{workload.Moses, workload.Silo}),
		},
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	units := s.MustExpand()
	if len(units) != 2 {
		t.Fatalf("got %d units, want 2", len(units))
	}
	u0 := units[0].Scenario
	if u0.Tasks[0].App != workload.Xapian || u0.Tasks[1].App != workload.ImgDNN {
		t.Errorf("unit 0 apps = %s,%s", u0.Tasks[0].App, u0.Tasks[1].App)
	}
	wantLabel := "tasks[0].app=xapian tasks[1].app=img-dnn"
	if units[0].Label != wantLabel {
		t.Errorf("unit 0 label = %q, want %q", units[0].Label, wantLabel)
	}
}

// TestExpandCombinationOverBudget: each axis value fits alone (so Validate
// passes) but one combination exceeds the core budget — Expand must reject it.
func TestExpandCombinationOverBudget(t *testing.T) {
	s := &Scenario{
		Version: Version, Name: "t", Policy: "Default",
		Tasks: []Task{lcTask(workload.Silo, 70),
			beTask(workload.IBench, 2), beTask(workload.IBench, 2)},
		Sweep: []Axis{
			intAxis("tasks[1].threads", 2, 4),
			intAxis("tasks[2].threads", 2, 4),
		},
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	_, err := s.Expand()
	if err == nil {
		t.Fatal("Expand accepted a 9-core combination on an 8-core machine")
	}
	if !strings.Contains(err.Error(), "mix needs 9 cores") {
		t.Errorf("Expand error = %v, want core-budget message", err)
	}
}

// TestAxisAccessors checks the typed value decoders.
func TestAxisAccessors(t *testing.T) {
	sa := strAxis("policy", "Default", "PIVOT")
	if got := sa.Strings(); got[0] != "Default" || got[1] != "PIVOT" {
		t.Errorf("Strings = %v", got)
	}
	ia := intAxis("tasks[0].load_pct", 10, 30)
	if got := ia.Ints(); got[0] != 10 || got[1] != 30 {
		t.Errorf("Ints = %v", got)
	}
	ba := boolAxis("options.prefetch", false, true)
	if got := ba.Bools(); got[0] || !got[1] {
		t.Errorf("Bools = %v", got)
	}
	ta := tupleAxis([]string{"a", "b"}, []string{"x", "y"})
	if got := ta.Tuples(); got[0][0] != "x" || got[0][1] != "y" {
		t.Errorf("Tuples = %v", got)
	}
}

// TestBuiltinsValid: every builtin validates and expands; the registry key
// matches the scenario name.
func TestBuiltinsValid(t *testing.T) {
	reg := Builtins()
	if len(reg) == 0 {
		t.Fatal("no builtins")
	}
	for id, s := range reg {
		if s.Name != id {
			t.Errorf("builtin %q has name %q", id, s.Name)
		}
		if err := s.Validate(); err != nil {
			t.Errorf("builtin %s: %v", id, err)
			continue
		}
		units, err := s.Expand()
		if err != nil {
			t.Errorf("builtin %s: Expand: %v", id, err)
			continue
		}
		if len(units) == 0 {
			t.Errorf("builtin %s expands to no units", id)
		}
	}
	// Spot-check the biggest sweep: 5 apps x 5 loads x 4 methods.
	if n := len(MustBuiltin("fig13").MustExpand()); n != 100 {
		t.Errorf("fig13 expands to %d units, want 100", n)
	}
	if n := len(MustBuiltin("fig1").MustExpand()); n != 20 {
		t.Errorf("fig1 expands to %d units, want 20", n)
	}
	ids := BuiltinIDs()
	if !sort_StringsAreSorted(ids) {
		t.Errorf("BuiltinIDs not sorted: %v", ids)
	}
}

func sort_StringsAreSorted(s []string) bool {
	for i := 1; i < len(s); i++ {
		if s[i] < s[i-1] {
			return false
		}
	}
	return true
}

// TestMustHelpers covers the panic paths of the Must* accessors.
func TestMustHelpers(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("MustBuiltin", func() { MustBuiltin("fig99") })
	s := MustBuiltin("fig1")
	mustPanic("MustAxis", func() { s.MustAxis("tasks[9].app") })
	mustPanic("MustTupleAxis", func() { s.MustTupleAxis() })
	if a := s.MustAxis("policy"); len(a.Strings()) != 4 {
		t.Errorf("fig1 policy axis has %d values", len(a.Strings()))
	}
	if a := MustBuiltin("fig15").MustTupleAxis(); len(a.Tuples()) != 2 {
		t.Errorf("fig15 tuple axis has %d values", len(a.Tuples()))
	}
}
