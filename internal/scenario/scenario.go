// Package scenario defines the declarative experiment schema: what to run —
// machine preset, task mix, policy, options, run windows, seeds and sweep
// axes — as data, decoupled from how the harness runs it (calibration,
// search loops, parallelism, checkpointing all stay in internal/exp and
// internal/harness).
//
// A scenario is authored as JSON (see examples/scenarios/) or constructed in
// Go; Builtins() holds one named scenario per paper figure and extension.
// The codec is strict: unknown fields are rejected and every codec or
// validation error carries the JSON field path it refers to ("tasks[1].app",
// "sweep[0].values", ...). Sweep axes expand cartesianly into RunUnits,
// each a fully-resolved, sweep-free scenario the harness can execute.
package scenario

import (
	"encoding/json"
	"fmt"

	"pivot/internal/mem"
)

// Version is the schema version this package reads and writes.
const Version = 1

// Scenario is one declarative experiment: a task mix on a machine under a
// policy, optionally swept along declared axes.
type Scenario struct {
	// Version must equal the package Version (1).
	Version int `json:"version"`
	// Name identifies the scenario (builtin registry key, journal labels).
	Name string `json:"name"`
	// Brief is a one-line description shown by `pivot-exp scenarios`.
	Brief string `json:"brief,omitempty"`

	// Machine selects the simulated node. The zero value means the kunpeng
	// preset at the harness's default core count.
	Machine Machine `json:"machine,omitempty"`

	// Policy names the partitioning method, as in the paper's figures:
	// one of Policies().
	Policy string `json:"policy"`

	// Options are the policy knobs a scenario may override.
	Options Options `json:"options,omitempty"`

	// Tasks is the co-location mix, one entry per task. LC tasks precede BE
	// tasks on the cores, in declaration order.
	Tasks []Task `json:"tasks"`

	// Warmup and Measure override the harness scale's run windows (cycles);
	// 0 keeps the scale's values.
	Warmup  uint64 `json:"warmup,omitempty"`
	Measure uint64 `json:"measure,omitempty"`

	// Seed overrides the harness scale's base RNG seed; 0 keeps it.
	Seed uint64 `json:"seed,omitempty"`

	// Faults, when set, attaches deterministic fault injectors to the named
	// MSC stations for every run of this scenario (see internal/faultinject).
	// Fault-injected runs are never checkpointed: injector RNG state lives
	// outside the machine snapshot.
	Faults *Faults `json:"faults,omitempty"`

	// Sim, when set, overrides execution-engine knobs for every run of this
	// scenario. Execution mode never changes what the simulation computes
	// (the engine's bit-identical contract) — only how fast.
	Sim *Sim `json:"sim,omitempty"`

	// Sweep declares the axes to expand (cartesian product, first axis
	// outermost). An empty list means the scenario is a single run unit.
	Sweep []Axis `json:"sweep,omitempty"`
}

// Machine selects and sizes the simulated node.
type Machine struct {
	// Preset is "kunpeng" (Table II, default) or "neoverse" (Table III).
	Preset string `json:"preset,omitempty"`
	// Cores overrides the core count; 0 uses the harness default.
	Cores int `json:"cores,omitempty"`
	// BEWays overrides the LLC way-mask size for BE partitions; 0 keeps the
	// preset's value.
	BEWays int `json:"be_ways,omitempty"`
}

// Machine preset names.
const (
	PresetKunpeng  = "kunpeng"
	PresetNeoverse = "neoverse"
)

// Sim overrides execution-engine knobs (how to simulate, never what the
// simulation computes).
type Sim struct {
	// Parallel > 0 runs each machine of this scenario on the sharded
	// windowed tick loop with that many worker goroutines
	// (machine.Options.Parallel); 0 inherits the CLI's -parallel-sim
	// setting. Results are bit-identical to serial for any value.
	Parallel int `json:"parallel,omitempty"`
	_        [0]func()
}

// Faults declares the scenario's fault-injection plan: per-station rates for
// the three deterministic perturbations internal/faultinject implements.
type Faults struct {
	// Seed derives each station's private injection RNG stream; stations
	// always perturb independently of one another and of the workload RNGs.
	Seed uint64 `json:"seed,omitempty"`
	// Stations maps an MSC name (one of MSCNames()) to its fault rates.
	Stations map[string]FaultRates `json:"stations"`
}

// FaultRates are one station's per-decision fault probabilities. All rates
// are fractions in 0..1; a spike rate requires a positive spike_cycles.
type FaultRates struct {
	// Drop refuses an offered request as if the station's queue were full.
	Drop float64 `json:"drop,omitempty"`
	// Spike adds SpikeCycles of traversal latency to an accepted request.
	Spike       float64 `json:"spike,omitempty"`
	SpikeCycles uint64  `json:"spike_cycles,omitempty"`
	// Hold makes the station grant nothing for a cycle.
	Hold float64 `json:"hold,omitempty"`
	_    [0]func()
}

// StationNames lists the stations of a fault plan in deterministic (MSC
// path) order.
func (f *Faults) StationNames() []string {
	out := make([]string, 0, len(f.Stations))
	for _, name := range MSCNames() {
		if _, ok := f.Stations[name]; ok {
			out = append(out, name)
		}
	}
	return out
}

// Options are the policy parameters a scenario may set. Zero values defer to
// the machine defaults (machine.Options.normalize).
type Options struct {
	// ExpectedLCBW is each LC task's expected bandwidth fraction (§IV-C).
	ExpectedLCBW float64 `json:"expected_lc_bw,omitempty"`
	// RRBPEntries sizes PIVOT's online table: >0 entries, -1 unlimited
	// (fully associative), 0 the default geometry.
	RRBPEntries int `json:"rrbp_entries,omitempty"`
	// MBALevel fixes the static MBA throttle under the MBA policy; 0 lets
	// the harness search for the best level meeting QoS.
	MBALevel int `json:"mba_level,omitempty"`
	// DisableMSC names one MSC that does not enforce priority (the Fig 7
	// leave-one-out): one of MSCNames(), or "" for none.
	DisableMSC string `json:"disable_msc,omitempty"`
	// Prefetch enables the explicit stride prefetcher (DESIGN.md §6.1).
	Prefetch bool `json:"prefetch,omitempty"`
	// NoStarvationGuard disables the §IV-D max-wait promotion (ablation).
	NoStarvationGuard bool `json:"no_starvation_guard,omitempty"`
}

// Task kinds.
const (
	KindLC = "lc"
	KindBE = "be"
)

// Task is one entry of the co-location mix.
type Task struct {
	// Kind is "lc" or "be".
	Kind string `json:"kind"`

	// App names a catalogue application (workload.LCApps / workload.BEApps).
	// Exactly one of App and LCParams/BEParams must be set.
	App string `json:"app,omitempty"`

	// LCParams / BEParams define a custom application inline. The Name must
	// be unique and must not shadow a catalogue app.
	LCParams *LCParams `json:"lc_params,omitempty"`
	BEParams *BEParams `json:"be_params,omitempty"`

	// LoadPct places an LC task at a percentage (1..100) of its calibrated
	// max load. Interarrival instead pins the mean request inter-arrival in
	// cycles directly, skipping calibration (no QoS target applies). At most
	// one may be set; neither means closed loop.
	LoadPct      int     `json:"load_pct,omitempty"`
	Interarrival float64 `json:"interarrival,omitempty"`

	// ExpectedBW sets the LC task's expected bandwidth fraction; 0 derives
	// it from calibration (or Options.ExpectedLCBW for explicit-interarrival
	// tasks).
	ExpectedBW float64 `json:"expected_bw,omitempty"`

	// Load shapes the LC task's arrival process and request population on
	// top of the base rate set by load_pct or interarrival: phase curves
	// (step/spike/ramp/diurnal sine), on-off bursts (MMPP-2), activity
	// windows (tenant churn) and Zipf-skewed payloads. Absent means the
	// historical stationary Poisson process.
	Load *LoadSpec `json:"load,omitempty"`

	// Threads is the BE thread count (one core each); 0 means 1.
	Threads int `json:"threads,omitempty"`
}

// Load phase shape names.
const (
	ShapeFlat = "flat"
	ShapeRamp = "ramp"
	ShapeSine = "sine"
	ShapeOff  = "off"
)

// LoadShapes lists the valid LoadPhase.Shape values.
func LoadShapes() []string { return []string{ShapeFlat, ShapeRamp, ShapeSine, ShapeOff} }

// LoadSpec mirrors load.Spec with a stable snake_case JSON surface. The
// base mean inter-arrival time is not declared here — it comes from the
// task's load_pct (calibrated) or interarrival (explicit); the spec scales
// it over time.
type LoadSpec struct {
	// ZipfTheta skews the payload-line and payload-PC populations
	// Zipfian with skew in [0, 1); 0 keeps the uniform population.
	ZipfTheta float64 `json:"zipf_theta,omitempty"`
	// Phases is a piecewise rate program, played once (holding the final
	// level) or cycled forever when Repeat is set.
	Phases []LoadPhase `json:"phases,omitempty"`
	Repeat bool        `json:"repeat,omitempty"`
	// OnOff superimposes two-state Markov-modulated bursts.
	OnOff *LoadOnOff `json:"onoff,omitempty"`
	// Windows restricts arrivals to the declared [from, until) intervals —
	// a tenant that joins, leaves, and possibly rejoins.
	Windows []LoadWindow `json:"windows,omitempty"`
	_       [0]func()
}

// Shaped reports whether the spec shapes the arrival process itself (phases,
// bursts or windows) as opposed to only skewing the request population. A nil
// spec is unshaped.
func (l *LoadSpec) Shaped() bool {
	return l != nil && (len(l.Phases) > 0 || l.OnOff != nil || len(l.Windows) > 0)
}

// LoadPhase is one segment of the rate program. Scale multiplies the task's
// base arrival rate.
type LoadPhase struct {
	// Shape is one of LoadShapes(): "flat" holds scale, "ramp" moves
	// linearly from scale to to, "sine" oscillates around scale with
	// relative amplitude amp and the given period, "off" silences arrivals.
	Shape  string  `json:"shape"`
	Cycles uint64  `json:"cycles"`
	Scale  float64 `json:"scale,omitempty"`
	To     float64 `json:"to,omitempty"`
	Amp    float64 `json:"amp,omitempty"`
	Period uint64  `json:"period,omitempty"`
	_      [0]func()
}

// LoadOnOff is the MMPP-2 burst modulator: exponential sojourns with the
// given means alternate between on_scale and off_scale rate multipliers.
type LoadOnOff struct {
	OnMean   float64 `json:"on_mean"`
	OffMean  float64 `json:"off_mean"`
	OnScale  float64 `json:"on_scale"`
	OffScale float64 `json:"off_scale,omitempty"`
	_        [0]func()
}

// LoadWindow is one half-open activity interval [from, until) in cycles.
type LoadWindow struct {
	From  uint64 `json:"from,omitempty"`
	Until uint64 `json:"until"`
	_     [0]func()
}

// ThreadCount is the number of cores the task occupies.
func (t *Task) ThreadCount() int {
	if t.Kind == KindBE && t.Threads > 1 {
		return t.Threads
	}
	return 1
}

// Axis is one sweep dimension. Either Param (a scalar axis: each value sets
// one field) or Params (a tuple axis: each value is an array setting the
// named fields together, e.g. paired app mixes) must be set.
type Axis struct {
	Param  string            `json:"param,omitempty"`
	Params []string          `json:"params,omitempty"`
	Values []json.RawMessage `json:"values"`
}

// Strings decodes a scalar axis's values as strings. It panics on type
// mismatch; Validate has already type-checked every axis of a parsed or
// builtin scenario.
func (a Axis) Strings() []string { return decodeAll[string](a) }

// Ints decodes a scalar axis's values as integers.
func (a Axis) Ints() []int { return decodeAll[int](a) }

// Bools decodes a scalar axis's values as booleans.
func (a Axis) Bools() []bool { return decodeAll[bool](a) }

// Tuples decodes a tuple axis's values as string tuples (the only tuple
// element type the builtin figures sweep).
func (a Axis) Tuples() [][]string { return decodeAll[[]string](a) }

func decodeAll[T any](a Axis) []T {
	out := make([]T, len(a.Values))
	for i, raw := range a.Values {
		if err := json.Unmarshal(raw, &out[i]); err != nil {
			panic(fmt.Sprintf("scenario: axis %s value %d: %v", a.name(), i, err))
		}
	}
	return out
}

// name renders the axis identity for labels and errors.
func (a Axis) name() string {
	if a.Param != "" {
		return a.Param
	}
	out := ""
	for i, p := range a.Params {
		if i > 0 {
			out += ","
		}
		out += p
	}
	return out
}

// AxisOf returns the scalar axis sweeping param, if declared.
func (s *Scenario) AxisOf(param string) (Axis, bool) {
	for _, a := range s.Sweep {
		if a.Param == param {
			return a, true
		}
	}
	return Axis{}, false
}

// MustAxis is AxisOf panicking when the axis is absent — for builtin
// scenarios, whose shape the package tests pin.
func (s *Scenario) MustAxis(param string) Axis {
	a, ok := s.AxisOf(param)
	if !ok {
		panic(fmt.Sprintf("scenario %s: no sweep axis %q", s.Name, param))
	}
	return a
}

// MustTupleAxis returns the scenario's single tuple axis, panicking when
// there is not exactly one.
func (s *Scenario) MustTupleAxis() Axis {
	var found *Axis
	for i := range s.Sweep {
		if len(s.Sweep[i].Params) > 0 {
			if found != nil {
				panic(fmt.Sprintf("scenario %s: multiple tuple axes", s.Name))
			}
			found = &s.Sweep[i]
		}
	}
	if found == nil {
		panic(fmt.Sprintf("scenario %s: no tuple axis", s.Name))
	}
	return *found
}

// LCParams mirrors workload.LCParams with a stable snake_case JSON surface.
type LCParams struct {
	Name         string    `json:"name"`
	ChaseDepth   int       `json:"chase_depth"`
	ChaseLines   uint64    `json:"chase_lines"`
	ChasePCs     int       `json:"chase_pcs"`
	PayloadLoads int       `json:"payload_loads,omitempty"`
	PayloadLines uint64    `json:"payload_lines,omitempty"`
	PayloadSeq   bool      `json:"payload_seq,omitempty"`
	PayloadPCs   int       `json:"payload_pcs,omitempty"`
	ALUPerStep   int       `json:"alu_per_step,omitempty"`
	ALULat       int       `json:"alu_lat,omitempty"`
	StoresPerReq int       `json:"stores_per_req,omitempty"`
	_            [0]func() // force keyed literals so new fields surface here
}

// BEParams mirrors workload.BEParams with a stable snake_case JSON surface.
type BEParams struct {
	Name        string  `json:"name"`
	StreamFrac  float64 `json:"stream_frac,omitempty"`
	StreamLines uint64  `json:"stream_lines,omitempty"`
	RandLines   uint64  `json:"rand_lines,omitempty"`
	StoreFrac   float64 `json:"store_frac,omitempty"`
	ALUPerMem   int     `json:"alu_per_mem,omitempty"`
	MLP         int     `json:"mlp,omitempty"`
	PCs         int     `json:"pcs,omitempty"`
	_           [0]func()
}

// Policies lists the valid Scenario.Policy names, in the order the paper
// introduces the methods.
func Policies() []string {
	return []string{"Default", "MBA", "MPAM", "FullPath", "PIVOT",
		"CBP", "CBP+FullPath", "PARTIES", "CLITE"}
}

// MSCNames lists the valid Options.DisableMSC values.
func MSCNames() []string {
	out := make([]string, len(mem.MSCs))
	for i, c := range mem.MSCs {
		out[i] = c.String()
	}
	return out
}

// MSC resolves a DisableMSC name to its component. The bool reports whether
// the name is known ("" is not).
func MSC(name string) (mem.Component, bool) {
	for _, c := range mem.MSCs {
		if c.String() == name {
			return c, true
		}
	}
	return 0, false
}
