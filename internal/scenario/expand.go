package scenario

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
)

// maxUnits bounds a sweep's cartesian expansion; a bigger product is almost
// certainly an authoring mistake.
const maxUnits = 10_000

// RunUnit is one fully-resolved, sweep-free run of a scenario.
type RunUnit struct {
	// Label identifies the unit within its scenario ("policy=PIVOT
	// tasks[0].load_pct=30"); empty when the scenario declares no sweep.
	Label string
	// Scenario is the resolved scenario for this unit (Sweep is nil).
	Scenario *Scenario
}

// Expand resolves the sweep axes into their cartesian product of run units,
// first axis outermost, tuple-axis fields set together. Each unit is
// re-checked against the machine's core budget (an axis can change thread
// counts). The scenario must already have passed Validate.
func (s *Scenario) Expand() ([]RunUnit, error) {
	total := 1
	for _, a := range s.Sweep {
		total *= len(a.Values)
	}
	if total > maxUnits {
		return nil, errf("sweep", "expands to %d run units (max %d)", total, maxUnits)
	}
	units := make([]RunUnit, 0, total)
	var walk func(u *Scenario, axis int, label []string) error
	walk = func(u *Scenario, axis int, label []string) error {
		if axis == len(s.Sweep) {
			resolved := u.clone()
			resolved.Sweep = nil
			unit := RunUnit{Label: strings.Join(label, " "), Scenario: resolved}
			if err := resolved.validateCoreBudget(); err != nil {
				return fmt.Errorf("unit %q: %w", unit.Label, err)
			}
			units = append(units, unit)
			return nil
		}
		a := s.Sweep[axis]
		for vi := range a.Values {
			next := u.clone()
			part, err := applyAxisValue(next, a, vi)
			if err != nil {
				return err
			}
			if err := walk(next, axis+1, append(label, part...)); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(s, 0, nil); err != nil {
		return nil, err
	}
	return units, nil
}

// MustExpand is Expand panicking on error, for builtin scenarios.
func (s *Scenario) MustExpand() []RunUnit {
	units, err := s.Expand()
	if err != nil {
		panic(err)
	}
	return units
}

// applyAxisValue applies value vi of axis a to u and returns the label parts
// ("param=value") it contributed.
func applyAxisValue(u *Scenario, a Axis, vi int) ([]string, error) {
	raw := a.Values[vi]
	if a.Param != "" {
		ref, err := u.paramRef(a.Param, a.path(vi))
		if err != nil {
			return nil, err
		}
		if err := u.setParam(ref, raw, a.path(vi)); err != nil {
			return nil, err
		}
		return []string{a.Param + "=" + labelValue(raw)}, nil
	}
	var elems []json.RawMessage
	if err := json.Unmarshal(raw, &elems); err != nil {
		return nil, errf(a.path(vi), "tuple value must be an array: %s", jsonErr(err))
	}
	if len(elems) != len(a.Params) {
		return nil, errf(a.path(vi), "tuple has %d elements for %d params", len(elems), len(a.Params))
	}
	parts := make([]string, len(elems))
	for i, e := range elems {
		ref, err := u.paramRef(a.Params[i], a.path(vi))
		if err != nil {
			return nil, err
		}
		if err := u.setParam(ref, e, a.path(vi)); err != nil {
			return nil, err
		}
		parts[i] = a.Params[i] + "=" + labelValue(e)
	}
	return parts, nil
}

// path renders the JSON path of one axis value for error messages. The axis
// index inside Sweep is not tracked here; the param name identifies it.
func (a Axis) path(vi int) string {
	return fmt.Sprintf("sweep[%s].values[%d]", a.name(), vi)
}

// labelValue renders an axis value compactly for run-unit labels.
func labelValue(raw json.RawMessage) string {
	var s string
	if err := json.Unmarshal(raw, &s); err == nil {
		return s
	}
	return string(raw)
}

// paramKind enumerates the sweepable fields.
type paramKind int

const (
	paramPolicy paramKind = iota
	paramSeed
	paramWarmup
	paramMeasure
	paramTaskApp
	paramTaskLoad
	paramTaskIA
	paramTaskThreads
	paramTaskZipf
	paramTaskPhaseScale
	paramTaskPhaseCycles
	paramTaskOnMean
	paramTaskOffMean
	paramOptExpectedLCBW
	paramOptRRBPEntries
	paramOptMBALevel
	paramOptDisableMSC
	paramOptPrefetch
	paramMachineCores
	paramMachineBEWays
)

// paramRef is a parsed axis parameter: which field, of which task, and —
// for load-phase fields — of which phase.
type paramRef struct {
	kind  paramKind
	task  int
	phase int
}

// paramRef parses an axis parameter name against this scenario (task indices
// must exist, fields must suit the task's kind).
func (s *Scenario) paramRef(name, path string) (paramRef, error) {
	switch name {
	case "policy":
		return paramRef{kind: paramPolicy}, nil
	case "seed":
		return paramRef{kind: paramSeed}, nil
	case "warmup":
		return paramRef{kind: paramWarmup}, nil
	case "measure":
		return paramRef{kind: paramMeasure}, nil
	case "options.expected_lc_bw":
		return paramRef{kind: paramOptExpectedLCBW}, nil
	case "options.rrbp_entries":
		return paramRef{kind: paramOptRRBPEntries}, nil
	case "options.mba_level":
		return paramRef{kind: paramOptMBALevel}, nil
	case "options.disable_msc":
		return paramRef{kind: paramOptDisableMSC}, nil
	case "options.prefetch":
		return paramRef{kind: paramOptPrefetch}, nil
	case "machine.cores":
		return paramRef{kind: paramMachineCores}, nil
	case "machine.be_ways":
		return paramRef{kind: paramMachineBEWays}, nil
	}
	if rest, ok := strings.CutPrefix(name, "machine."); ok {
		return paramRef{}, errf(path,
			"unknown machine sweep parameter %q (machine.cores or machine.be_ways)", rest)
	}
	rest, ok := strings.CutPrefix(name, "tasks[")
	if !ok {
		return paramRef{}, errf(path, "unknown sweep parameter %q", name)
	}
	idxStr, field, ok := strings.Cut(rest, "].")
	if !ok {
		return paramRef{}, errf(path, "malformed sweep parameter %q", name)
	}
	idx, err := strconv.Atoi(idxStr)
	if err != nil || idx < 0 {
		return paramRef{}, errf(path, "malformed task index in %q", name)
	}
	if idx >= len(s.Tasks) {
		return paramRef{}, errf(path, "task index %d out of range (scenario has %d tasks)", idx, len(s.Tasks))
	}
	ref := paramRef{task: idx}
	kind := s.Tasks[idx].Kind
	lcField := false
	switch field {
	case "app":
		ref.kind = paramTaskApp
	case "load_pct":
		ref.kind = paramTaskLoad
	case "interarrival":
		ref.kind = paramTaskIA
	case "threads":
		ref.kind = paramTaskThreads
	default:
		loadField, isLoad := strings.CutPrefix(field, "load.")
		if !isLoad {
			return paramRef{}, errf(path, "unknown sweep parameter %q", name)
		}
		lcField = true
		if kind == KindLC && s.Tasks[idx].Load == nil {
			return paramRef{}, errf(path, "%q sweeps a load field but tasks[%d] declares no load stanza", name, idx)
		}
		switch loadField {
		case "zipf_theta":
			ref.kind = paramTaskZipf
		case "onoff.on_mean", "onoff.off_mean":
			if kind == KindLC && s.Tasks[idx].Load.OnOff == nil {
				return paramRef{}, errf(path, "%q sweeps an onoff field but tasks[%d].load declares no onoff stanza", name, idx)
			}
			ref.kind = paramTaskOnMean
			if loadField == "onoff.off_mean" {
				ref.kind = paramTaskOffMean
			}
		default:
			rest, isPhase := strings.CutPrefix(loadField, "phases[")
			if !isPhase {
				return paramRef{}, errf(path, "unknown sweep parameter %q", name)
			}
			phStr, phField, ok := strings.Cut(rest, "].")
			if !ok {
				return paramRef{}, errf(path, "malformed sweep parameter %q", name)
			}
			ph, err := strconv.Atoi(phStr)
			if err != nil || ph < 0 {
				return paramRef{}, errf(path, "malformed phase index in %q", name)
			}
			if kind == KindLC && ph >= len(s.Tasks[idx].Load.Phases) {
				return paramRef{}, errf(path, "phase index %d out of range (tasks[%d].load has %d phases)",
					ph, idx, len(s.Tasks[idx].Load.Phases))
			}
			ref.phase = ph
			switch phField {
			case "scale":
				ref.kind = paramTaskPhaseScale
			case "cycles":
				ref.kind = paramTaskPhaseCycles
			default:
				return paramRef{}, errf(path, "unknown sweep parameter %q", name)
			}
		}
	}
	if (ref.kind == paramTaskLoad || ref.kind == paramTaskIA || lcField) && kind != KindLC {
		return paramRef{}, errf(path, "%q sweeps an LC field of a %q task", name, kind)
	}
	if ref.kind == paramTaskThreads && kind != KindBE {
		return paramRef{}, errf(path, "%q sweeps a BE field of a %q task", name, kind)
	}
	return ref, nil
}

// setParam decodes raw into the referenced field with the same range checks
// Validate applies to the static scenario.
func (s *Scenario) setParam(ref paramRef, raw json.RawMessage, path string) error {
	asString := func() (string, error) {
		var v string
		if err := json.Unmarshal(raw, &v); err != nil {
			return "", errf(path, "%s", jsonErr(err))
		}
		return v, nil
	}
	asInt := func() (int, error) {
		var v int
		if err := json.Unmarshal(raw, &v); err != nil {
			return 0, errf(path, "%s", jsonErr(err))
		}
		return v, nil
	}
	switch ref.kind {
	case paramPolicy:
		v, err := asString()
		if err != nil {
			return err
		}
		s.Policy = v
		return s.validatePolicy(path)
	case paramSeed:
		return unmarshalField(raw, &s.Seed, path)
	case paramWarmup:
		return unmarshalField(raw, &s.Warmup, path)
	case paramMeasure:
		return unmarshalField(raw, &s.Measure, path)
	case paramTaskApp:
		v, err := asString()
		if err != nil {
			return err
		}
		t := &s.Tasks[ref.task]
		t.App, t.LCParams, t.BEParams = v, nil, nil
		return t.validateApp(path)
	case paramTaskLoad:
		v, err := asInt()
		if err != nil {
			return err
		}
		if v < 1 || v > 100 {
			return errf(path, "load_pct %d must be in 1..100", v)
		}
		t := &s.Tasks[ref.task]
		t.LoadPct, t.Interarrival = v, 0
		return nil
	case paramTaskIA:
		var v float64
		if err := unmarshalField(raw, &v, path); err != nil {
			return err
		}
		if v <= 0 {
			return errf(path, "interarrival %v must be positive", v)
		}
		t := &s.Tasks[ref.task]
		t.Interarrival, t.LoadPct = v, 0
		return nil
	case paramTaskThreads:
		v, err := asInt()
		if err != nil {
			return err
		}
		if v < 1 {
			return errf(path, "threads %d must be at least 1", v)
		}
		s.Tasks[ref.task].Threads = v
		return nil
	case paramTaskZipf:
		var v float64
		if err := unmarshalField(raw, &v, path); err != nil {
			return err
		}
		if v < 0 || v >= 1 {
			return errf(path, "zipf_theta %v must be in [0, 1)", v)
		}
		s.Tasks[ref.task].Load.ZipfTheta = v
		return nil
	case paramTaskPhaseScale:
		var v float64
		if err := unmarshalField(raw, &v, path); err != nil {
			return err
		}
		p := &s.Tasks[ref.task].Load.Phases[ref.phase]
		if v <= 0 && p.Shape != ShapeOff {
			return errf(path, "scale %v must be positive for shape %q", v, p.Shape)
		}
		p.Scale = v
		return nil
	case paramTaskPhaseCycles:
		var v uint64
		if err := unmarshalField(raw, &v, path); err != nil {
			return err
		}
		if v == 0 {
			return errf(path, "cycles must be positive")
		}
		s.Tasks[ref.task].Load.Phases[ref.phase].Cycles = v
		return nil
	case paramTaskOnMean, paramTaskOffMean:
		var v float64
		if err := unmarshalField(raw, &v, path); err != nil {
			return err
		}
		if v <= 0 {
			return errf(path, "sojourn mean %v must be positive", v)
		}
		if ref.kind == paramTaskOnMean {
			s.Tasks[ref.task].Load.OnOff.OnMean = v
		} else {
			s.Tasks[ref.task].Load.OnOff.OffMean = v
		}
		return nil
	case paramOptExpectedLCBW:
		if err := unmarshalField(raw, &s.Options.ExpectedLCBW, path); err != nil {
			return err
		}
		return checkExpectedLCBW(s.Options.ExpectedLCBW, path)
	case paramOptRRBPEntries:
		v, err := asInt()
		if err != nil {
			return err
		}
		s.Options.RRBPEntries = v
		return checkRRBPEntries(v, path)
	case paramOptMBALevel:
		v, err := asInt()
		if err != nil {
			return err
		}
		s.Options.MBALevel = v
		return checkMBALevel(v, path)
	case paramOptDisableMSC:
		v, err := asString()
		if err != nil {
			return err
		}
		s.Options.DisableMSC = v
		return checkDisableMSC(v, path)
	case paramOptPrefetch:
		return unmarshalField(raw, &s.Options.Prefetch, path)
	case paramMachineCores:
		v, err := asInt()
		if err != nil {
			return err
		}
		if v < 1 {
			return errf(path, "machine.cores %d must be positive", v)
		}
		s.Machine.Cores = v
		return nil
	case paramMachineBEWays:
		v, err := asInt()
		if err != nil {
			return err
		}
		if v < 0 {
			return errf(path, "machine.be_ways %d must not be negative", v)
		}
		s.Machine.BEWays = v
		return nil
	}
	return errf(path, "unhandled sweep parameter kind %d", ref.kind)
}

// Clone deep-copies the scenario's mutable parts — what a caller mutating
// tasks, options or the fault plan (the fuzzer's shrinker, axis probing)
// needs. Axes share the original's immutable raw values.
func (s *Scenario) Clone() *Scenario { return s.clone() }

// clone deep-copies the scenario's mutable parts (tasks and their custom
// params, the fault plan); axes share the original's immutable raw values.
func (s *Scenario) clone() *Scenario {
	out := *s
	out.Tasks = make([]Task, len(s.Tasks))
	copy(out.Tasks, s.Tasks)
	for i := range out.Tasks {
		if p := out.Tasks[i].LCParams; p != nil {
			cp := *p
			out.Tasks[i].LCParams = &cp
		}
		if p := out.Tasks[i].BEParams; p != nil {
			cp := *p
			out.Tasks[i].BEParams = &cp
		}
		if l := out.Tasks[i].Load; l != nil {
			cl := *l
			cl.Phases = append([]LoadPhase(nil), l.Phases...)
			cl.Windows = append([]LoadWindow(nil), l.Windows...)
			if l.OnOff != nil {
				oo := *l.OnOff
				cl.OnOff = &oo
			}
			out.Tasks[i].Load = &cl
		}
	}
	if s.Faults != nil {
		cp := *s.Faults
		cp.Stations = make(map[string]FaultRates, len(s.Faults.Stations))
		for k, v := range s.Faults.Stations {
			cp.Stations[k] = v
		}
		out.Faults = &cp
	}
	if s.Sim != nil {
		cp := *s.Sim
		out.Sim = &cp
	}
	return &out
}
