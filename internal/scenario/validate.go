package scenario

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"pivot/internal/workload"
)

// DefaultCores is the core count used when Machine.Cores is 0 (the paper's
// 8-core node).
const DefaultCores = 8

// Validate checks the scenario against the schema rules, reporting the first
// violation with its field path. Parse calls it; Go-constructed scenarios
// (builtins, tests) should call it explicitly.
func (s *Scenario) Validate() error {
	if s.Version != Version {
		return errf("version", "must be %d (got %d)", Version, s.Version)
	}
	if s.Name == "" {
		return errf("name", "must be set")
	}
	if err := s.validateMachine(); err != nil {
		return err
	}
	if err := s.validatePolicy("policy"); err != nil {
		return err
	}
	if err := s.Options.validate(); err != nil {
		return err
	}
	if err := s.validateTasks(); err != nil {
		return err
	}
	if err := s.validateCoreBudget(); err != nil {
		return err
	}
	if err := s.validateFaults(); err != nil {
		return err
	}
	if err := s.validateSim(); err != nil {
		return err
	}
	return s.validateSweep()
}

// validateSim checks the execution-engine stanza.
func (s *Scenario) validateSim() error {
	if s.Sim == nil {
		return nil
	}
	if s.Sim.Parallel < 0 {
		return errf("sim.parallel", "must not be negative (got %d)", s.Sim.Parallel)
	}
	return nil
}

// validateFaults checks the fault-injection stanza: known station names,
// rates in 0..1, and a positive spike_cycles exactly when a spike rate is
// set.
func (s *Scenario) validateFaults() error {
	f := s.Faults
	if f == nil {
		return nil
	}
	if len(f.Stations) == 0 {
		return errf("faults.stations", "at least one station is required")
	}
	// Sorted keys keep which unknown station is reported first deterministic.
	names := make([]string, 0, len(f.Stations))
	for name := range f.Stations {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if _, ok := MSC(name); !ok {
			return errf("faults.stations."+name,
				"unknown MSC %q (one of %s)", name, strings.Join(MSCNames(), ", "))
		}
	}
	for _, name := range f.StationNames() {
		r := f.Stations[name]
		path := "faults.stations." + name
		for _, rate := range []struct {
			field string
			v     float64
		}{{"drop", r.Drop}, {"spike", r.Spike}, {"hold", r.Hold}} {
			if rate.v < 0 || rate.v > 1 {
				return errf(path+"."+rate.field, "rate %v must be in 0..1", rate.v)
			}
		}
		if r.Spike > 0 && r.SpikeCycles == 0 {
			return errf(path+".spike_cycles", "must be positive when spike is set")
		}
		if r.Spike == 0 && r.SpikeCycles != 0 {
			return errf(path+".spike_cycles", "set without a spike rate")
		}
	}
	return nil
}

func (s *Scenario) validateMachine() error {
	switch s.Machine.Preset {
	case "", PresetKunpeng, PresetNeoverse:
	default:
		return errf("machine.preset", "unknown preset %q (use %q or %q)",
			s.Machine.Preset, PresetKunpeng, PresetNeoverse)
	}
	if s.Machine.Cores < 0 {
		return errf("machine.cores", "must not be negative")
	}
	if s.Machine.BEWays < 0 {
		return errf("machine.be_ways", "must not be negative")
	}
	return nil
}

func (s *Scenario) validatePolicy(path string) error {
	for _, p := range Policies() {
		if s.Policy == p {
			return nil
		}
	}
	return errf(path, "unknown policy %q (one of %s)", s.Policy, strings.Join(Policies(), ", "))
}

func (o Options) validate() error {
	if err := checkExpectedLCBW(o.ExpectedLCBW, "options.expected_lc_bw"); err != nil {
		return err
	}
	if err := checkRRBPEntries(o.RRBPEntries, "options.rrbp_entries"); err != nil {
		return err
	}
	if err := checkMBALevel(o.MBALevel, "options.mba_level"); err != nil {
		return err
	}
	return checkDisableMSC(o.DisableMSC, "options.disable_msc")
}

func checkExpectedLCBW(v float64, path string) error {
	if v < 0 || v > 1 {
		return errf(path, "expected bandwidth fraction %v must be in 0..1", v)
	}
	return nil
}

func checkRRBPEntries(v int, path string) error {
	if v < -1 {
		return errf(path, "rrbp_entries %d must be -1 (unlimited), 0 (default) or positive", v)
	}
	return nil
}

func checkMBALevel(v int, path string) error {
	if v < 0 || v > 100 {
		return errf(path, "mba_level %d must be in 0..100", v)
	}
	return nil
}

func checkDisableMSC(v string, path string) error {
	if v == "" {
		return nil
	}
	if _, ok := MSC(v); !ok {
		return errf(path, "unknown MSC %q (one of %s)", v, strings.Join(MSCNames(), ", "))
	}
	return nil
}

func (s *Scenario) validateTasks() error {
	if len(s.Tasks) == 0 {
		return errf("tasks", "at least one task is required")
	}
	customNames := map[string]string{} // name -> defining path
	for i := range s.Tasks {
		t := &s.Tasks[i]
		path := fmt.Sprintf("tasks[%d]", i)
		switch t.Kind {
		case KindLC, KindBE:
		default:
			return errf(path+".kind", "must be %q or %q (got %q)", KindLC, KindBE, t.Kind)
		}
		if t.Kind == KindLC && t.BEParams != nil {
			return errf(path+".be_params", "not allowed on an %q task", KindLC)
		}
		if t.Kind == KindBE && t.LCParams != nil {
			return errf(path+".lc_params", "not allowed on a %q task", KindBE)
		}
		custom := t.LCParams != nil || t.BEParams != nil
		if t.App == "" && !custom {
			return errf(path, "set app or inline params")
		}
		if t.App != "" && custom {
			return errf(path, "app and inline params are mutually exclusive")
		}
		if t.App != "" {
			if err := t.validateApp(path + ".app"); err != nil {
				return err
			}
		}
		if custom {
			name := t.customName()
			ppath := path + ".lc_params.name"
			if t.BEParams != nil {
				ppath = path + ".be_params.name"
			}
			if name == "" {
				return errf(ppath, "must be set")
			}
			if _, lc := workload.LCApps()[name]; lc {
				return errf(ppath, "%q shadows a catalogue LC application", name)
			}
			if _, be := workload.BEApps()[name]; be {
				return errf(ppath, "%q shadows a catalogue BE application", name)
			}
			if prev, dup := customNames[name]; dup {
				return errf(ppath, "%q already defined at %s", name, prev)
			}
			customNames[name] = ppath
		}
		if t.Kind == KindBE {
			for _, f := range []struct {
				name string
				set  bool
			}{
				{"load_pct", t.LoadPct != 0},
				{"interarrival", t.Interarrival != 0},
				{"expected_bw", t.ExpectedBW != 0},
				{"load", t.Load != nil},
			} {
				if f.set {
					return errf(path+"."+f.name, "only valid on %q tasks", KindLC)
				}
			}
			if t.Threads < 0 {
				return errf(path+".threads", "must not be negative")
			}
			continue
		}
		// LC task.
		if t.Threads != 0 {
			return errf(path+".threads", "only valid on %q tasks", KindBE)
		}
		if t.LoadPct != 0 && (t.LoadPct < 1 || t.LoadPct > 100) {
			return errf(path+".load_pct", "load_pct %d must be in 1..100", t.LoadPct)
		}
		if t.Interarrival < 0 {
			return errf(path+".interarrival", "must not be negative")
		}
		if t.LoadPct != 0 && t.Interarrival != 0 {
			return errf(path, "load_pct and interarrival are mutually exclusive")
		}
		if t.ExpectedBW < 0 || t.ExpectedBW > 1 {
			return errf(path+".expected_bw", "expected bandwidth fraction %v must be in 0..1", t.ExpectedBW)
		}
		if err := t.validateLoad(path + ".load"); err != nil {
			return err
		}
	}
	return nil
}

// validateLoad checks an LC task's load stanza: known shapes with only
// their relevant fields set, positive durations, bounded skew, ordered
// windows, and a base rate for every arrival-shaping feature.
func (t *Task) validateLoad(path string) error {
	l := t.Load
	if l == nil {
		return nil
	}
	if l.ZipfTheta < 0 || l.ZipfTheta >= 1 {
		return errf(path+".zipf_theta", "skew %v must be in [0, 1)", l.ZipfTheta)
	}
	shaped := len(l.Phases) > 0 || l.OnOff != nil || len(l.Windows) > 0
	if shaped && t.LoadPct == 0 && t.Interarrival == 0 {
		return errf(path, "rate shaping needs a base rate: set load_pct or interarrival")
	}
	if l.Repeat && len(l.Phases) == 0 {
		return errf(path+".repeat", "set without phases")
	}
	if len(l.Phases) > 32 {
		return errf(path+".phases", "at most 32 phases (got %d)", len(l.Phases))
	}
	anyRate := len(l.Phases) == 0
	for i := range l.Phases {
		p := &l.Phases[i]
		ppath := fmt.Sprintf("%s.phases[%d]", path, i)
		if p.Cycles == 0 {
			return errf(ppath+".cycles", "must be positive")
		}
		fields := []struct {
			name string
			set  bool
			want bool
		}{
			{"scale", p.Scale != 0, p.Shape != ShapeOff},
			{"to", p.To != 0, p.Shape == ShapeRamp},
			{"amp", p.Amp != 0, p.Shape == ShapeSine},
			{"period", p.Period != 0, p.Shape == ShapeSine},
		}
		switch p.Shape {
		case ShapeFlat, ShapeRamp, ShapeSine:
			if p.Scale <= 0 {
				return errf(ppath+".scale", "must be positive for shape %q", p.Shape)
			}
		case ShapeOff:
		default:
			return errf(ppath+".shape", "unknown shape %q (one of %s)",
				p.Shape, strings.Join(LoadShapes(), ", "))
		}
		for _, f := range fields {
			if f.set && !f.want {
				return errf(ppath+"."+f.name, "not valid for shape %q", p.Shape)
			}
		}
		switch p.Shape {
		case ShapeRamp:
			if p.To < 0 {
				return errf(ppath+".to", "must not be negative")
			}
		case ShapeSine:
			if p.Amp < 0 || p.Amp > 1 {
				return errf(ppath+".amp", "amplitude %v must be in 0..1", p.Amp)
			}
			if p.Period == 0 {
				return errf(ppath+".period", "must be positive for shape %q", ShapeSine)
			}
		}
		if p.maxScale() > 0 {
			anyRate = true
		}
	}
	if !anyRate {
		return errf(path+".phases", "every phase is silent — the task would never issue a request")
	}
	if o := l.OnOff; o != nil {
		opath := path + ".onoff"
		if o.OnMean <= 0 {
			return errf(opath+".on_mean", "must be positive")
		}
		if o.OffMean <= 0 {
			return errf(opath+".off_mean", "must be positive")
		}
		if o.OnScale < 0 || o.OffScale < 0 {
			return errf(opath, "scales must not be negative")
		}
		if o.OnScale == 0 && o.OffScale == 0 {
			return errf(opath, "both scales are zero — the task would never issue a request")
		}
	}
	for i := range l.Windows {
		w := l.Windows[i]
		wpath := fmt.Sprintf("%s.windows[%d]", path, i)
		if w.Until <= w.From {
			return errf(wpath, "until %d must exceed from %d", w.Until, w.From)
		}
		if i > 0 && w.From < l.Windows[i-1].Until {
			return errf(wpath+".from", "window overlaps or precedes windows[%d] (windows must be ordered and disjoint)", i-1)
		}
	}
	return nil
}

// maxScale mirrors load.Phase.maxScale for validation (the schema must not
// depend on conversion to reason about silence).
func (p *LoadPhase) maxScale() float64 {
	switch p.Shape {
	case ShapeRamp:
		if p.To > p.Scale {
			return p.To
		}
		return p.Scale
	case ShapeSine:
		return p.Scale * (1 + p.Amp)
	case ShapeOff:
		return 0
	default:
		return p.Scale
	}
}

// validateApp checks App against the catalogue for the task's kind.
func (t *Task) validateApp(path string) error {
	if t.Kind == KindLC {
		if _, ok := workload.LCApps()[t.App]; !ok {
			return errf(path, "unknown LC application %q", t.App)
		}
		return nil
	}
	if _, ok := workload.BEApps()[t.App]; !ok {
		return errf(path, "unknown BE application %q", t.App)
	}
	return nil
}

// customName returns the inline-params name, or "".
func (t *Task) customName() string {
	if t.LCParams != nil {
		return t.LCParams.Name
	}
	if t.BEParams != nil {
		return t.BEParams.Name
	}
	return ""
}

// Cores is the effective machine core count.
func (s *Scenario) Cores() int {
	if s.Machine.Cores > 0 {
		return s.Machine.Cores
	}
	return DefaultCores
}

// validateCoreBudget checks that the mix fits the machine (task i runs on
// core i; BE tasks occupy one core per thread).
func (s *Scenario) validateCoreBudget() error {
	need := 0
	for i := range s.Tasks {
		need += s.Tasks[i].ThreadCount()
	}
	if need > s.Cores() {
		return errf("tasks", "mix needs %d cores but the machine has %d", need, s.Cores())
	}
	return nil
}

func (s *Scenario) validateSweep() error {
	seen := map[string]int{}
	for i := range s.Sweep {
		a := s.Sweep[i]
		path := fmt.Sprintf("sweep[%d]", i)
		if a.Param == "" && len(a.Params) == 0 {
			return errf(path, "set param or params")
		}
		if a.Param != "" && len(a.Params) > 0 {
			return errf(path, "param and params are mutually exclusive")
		}
		if len(a.Values) == 0 {
			return errf(path+".values", "empty sweep axis %q", a.name())
		}
		for _, p := range a.params() {
			if prev, dup := seen[p]; dup {
				return errf(path, "parameter %q already swept by sweep[%d]", p, prev)
			}
			seen[p] = i
		}
		// Type- and range-check every value by applying it to a throwaway
		// clone; an axis that also perturbs thread counts or loads must keep
		// each single-value variant within the core budget (Expand re-checks
		// full combinations).
		for vi := range a.Values {
			probe := s.clone()
			if _, err := applyAxisValue(probe, a, vi); err != nil {
				return err
			}
			if err := probe.validateCoreBudget(); err != nil {
				var fe *FieldError
				if errors.As(err, &fe) {
					return errf(a.path(vi), "%s", fe.Msg)
				}
				return fmt.Errorf("%s: %w", a.path(vi), err)
			}
		}
	}
	return nil
}

// params lists the parameter names the axis sets.
func (a Axis) params() []string {
	if a.Param != "" {
		return []string{a.Param}
	}
	return a.Params
}
