package scenario

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// faultsDoc wraps a faults stanza in an otherwise-valid scenario document.
func faultsDoc(stanza string) string {
	return `{"version":1,"name":"t","policy":"Default",
	         "tasks":[{"kind":"lc","app":"silo","load_pct":70}],
	         "faults":` + stanza + `}`
}

// TestFaultsParse round-trips a full fault stanza and checks the decoded
// rates and the strict-codec fixed point.
func TestFaultsParse(t *testing.T) {
	doc := faultsDoc(`{"seed":9,"stations":{
	  "Bus":{"drop":0.01,"spike":0.05,"spike_cycles":200},
	  "MemCtrl":{"hold":0.02}}}`)
	s, err := Parse([]byte(doc))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if s.Faults == nil || s.Faults.Seed != 9 || len(s.Faults.Stations) != 2 {
		t.Fatalf("faults stanza decoded wrong: %+v", s.Faults)
	}
	bus := s.Faults.Stations["Bus"]
	if bus.Drop != 0.01 || bus.Spike != 0.05 || bus.SpikeCycles != 200 {
		t.Errorf("Bus rates wrong: %+v", bus)
	}
	if mc := s.Faults.Stations["MemCtrl"]; mc.Hold != 0.02 {
		t.Errorf("MemCtrl rates wrong: %+v", mc)
	}
	if names := s.Faults.StationNames(); len(names) != 2 || names[0] != "Bus" || names[1] != "MemCtrl" {
		t.Fatalf("StationNames = %v, want MSC order [Bus MemCtrl]", names)
	}
	enc := s.MustEncode()
	re, err := Parse(enc)
	if err != nil {
		t.Fatalf("re-Parse of own encoding: %v", err)
	}
	if !bytes.Equal(enc, re.MustEncode()) {
		t.Errorf("encode not a fixed point:\n%s\n%s", enc, re.MustEncode())
	}
	c := s.Clone()
	c.Faults.Stations["Bus"] = FaultRates{Drop: 0.9}
	if s.Faults.Stations["Bus"].Drop != 0.01 {
		t.Errorf("Clone aliases the stations map")
	}
}

// TestFaultsErrors drives every rejection class of the faults stanza through
// the codec and validator, checking field paths and message substance.
func TestFaultsErrors(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		path string
		msg  string
	}{
		{
			name: "no stations",
			doc:  faultsDoc(`{"seed":1,"stations":{}}`),
			path: "faults.stations", msg: "at least one station",
		},
		{
			name: "unknown station",
			doc:  faultsDoc(`{"stations":{"Busz":{"drop":0.1}}}`),
			path: "faults.stations.Busz", msg: `unknown MSC "Busz"`,
		},
		{
			name: "rate out of range",
			doc:  faultsDoc(`{"stations":{"Bus":{"drop":1.5}}}`),
			path: "faults.stations.Bus.drop", msg: "must be in 0..1",
		},
		{
			name: "negative rate",
			doc:  faultsDoc(`{"stations":{"Bus":{"hold":-0.1}}}`),
			path: "faults.stations.Bus.hold", msg: "must be in 0..1",
		},
		{
			name: "spike without duration",
			doc:  faultsDoc(`{"stations":{"Bus":{"spike":0.1}}}`),
			path: "faults.stations.Bus.spike_cycles", msg: "must be positive when spike is set",
		},
		{
			name: "duration without spike",
			doc:  faultsDoc(`{"stations":{"Bus":{"spike_cycles":100}}}`),
			path: "faults.stations.Bus.spike_cycles", msg: "set without a spike rate",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.doc))
			if err == nil {
				t.Fatalf("Parse accepted %s", tc.doc)
			}
			var fe *FieldError
			if !errors.As(err, &fe) {
				t.Fatalf("error %v (%T) is not a FieldError", err, err)
			}
			if fe.Path != tc.path {
				t.Errorf("path = %q, want %q (msg %q)", fe.Path, tc.path, fe.Msg)
			}
			if !strings.Contains(fe.Msg, tc.msg) {
				t.Errorf("msg = %q, want substring %q", fe.Msg, tc.msg)
			}
		})
	}
}

// TestMachineSweepAxes expands a two-axis machine-parameter sweep and checks
// every unit carries the right geometry.
func TestMachineSweepAxes(t *testing.T) {
	doc := `{"version":1,"name":"t","policy":"Default",
	         "machine":{"cores":2},
	         "tasks":[{"kind":"lc","app":"silo","load_pct":70}],
	         "sweep":[{"param":"machine.cores","values":[2,4]},
	                  {"param":"machine.be_ways","values":[1,2]}]}`
	s, err := Parse([]byte(doc))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	units, err := s.Expand()
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	if len(units) != 4 {
		t.Fatalf("Expand produced %d units, want 4", len(units))
	}
	want := []struct {
		cores, ways int
		label       string
	}{
		{2, 1, "machine.cores=2 machine.be_ways=1"},
		{2, 2, "machine.cores=2 machine.be_ways=2"},
		{4, 1, "machine.cores=4 machine.be_ways=1"},
		{4, 2, "machine.cores=4 machine.be_ways=2"},
	}
	for i, u := range units {
		m := u.Scenario.Machine
		if m.Cores != want[i].cores || m.BEWays != want[i].ways {
			t.Errorf("unit %d: cores=%d be_ways=%d, want %d/%d", i, m.Cores, m.BEWays, want[i].cores, want[i].ways)
		}
		if u.Label != want[i].label {
			t.Errorf("unit %d: label %q, want %q", i, u.Label, want[i].label)
		}
	}
	if s.Machine.Cores != 2 || s.Machine.BEWays != 0 {
		t.Errorf("Expand mutated the base scenario's machine: %+v", s.Machine)
	}
}

// TestMachineSweepAxisErrors: unknown machine paths and out-of-range values
// are rejected with a field path into the sweep.
func TestMachineSweepAxisErrors(t *testing.T) {
	cases := []struct {
		name string
		axis string
		msg  string
	}{
		{"unknown machine parameter", `{"param":"machine.sockets","values":[1,2]}`,
			"unknown machine sweep parameter"},
		{"cores not positive", `{"param":"machine.cores","values":[0]}`,
			"must be positive"},
		{"be_ways negative", `{"param":"machine.be_ways","values":[-1]}`,
			"must not be negative"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			doc := `{"version":1,"name":"t","policy":"Default",
			         "tasks":[{"kind":"lc","app":"silo","load_pct":70}],
			         "sweep":[` + tc.axis + `]}`
			s, err := Parse([]byte(doc))
			if err == nil {
				_, err = s.Expand()
			}
			if err == nil {
				t.Fatalf("axis %s accepted", tc.axis)
			}
			if !strings.Contains(err.Error(), tc.msg) {
				t.Errorf("error %q, want substring %q", err, tc.msg)
			}
		})
	}
}

// TestEncodeFixedPoint: for every builtin, Encode → Parse → Encode is
// byte-identical — the invariant the fuzzer's codec oracle enforces.
func TestEncodeFixedPoint(t *testing.T) {
	for name, s := range Builtins() {
		enc, err := s.Encode()
		if err != nil {
			t.Fatalf("%s: Encode: %v", name, err)
		}
		re, err := Parse(enc)
		if err != nil {
			t.Fatalf("%s: Parse of own encoding: %v", name, err)
		}
		if !bytes.Equal(enc, re.MustEncode()) {
			t.Errorf("%s: encode not a fixed point", name)
		}
	}
}
