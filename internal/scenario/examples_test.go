package scenario

import (
	"os"
	"path/filepath"
	"testing"
)

// TestExampleScenarios strict-decodes, validates and expands every spec
// checked in under examples/scenarios/ — the documented entry points must
// never rot.
func TestExampleScenarios(t *testing.T) {
	dir := filepath.Join("..", "..", "examples", "scenarios")
	matches, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 {
		t.Fatalf("no example scenarios under %s", dir)
	}
	for _, path := range matches {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			doc, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			s, err := Parse(doc)
			if err != nil {
				t.Fatalf("strict decode: %v", err)
			}
			units, err := s.Expand()
			if err != nil {
				t.Fatalf("Expand: %v", err)
			}
			if len(units) == 0 {
				t.Fatalf("expanded to no units")
			}
		})
	}
}
