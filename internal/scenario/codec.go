package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// FieldError is a scenario codec or validation error anchored at the JSON
// field path it refers to ("tasks[1].app", "sweep[0].values", ...).
type FieldError struct {
	Path string
	Msg  string
}

func (e *FieldError) Error() string {
	if e.Path == "" {
		return "scenario: " + e.Msg
	}
	return "scenario: " + e.Path + ": " + e.Msg
}

// errf builds a FieldError at path.
func errf(path, format string, args ...any) error {
	return &FieldError{Path: path, Msg: fmt.Sprintf(format, args...)}
}

// Parse decodes and validates a JSON scenario. Unknown fields anywhere in
// the document are rejected, and every error names the offending field path.
func Parse(data []byte) (*Scenario, error) {
	s := new(Scenario)
	if err := s.decode(data); err != nil {
		return nil, err
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// Load is Parse on a file.
func Load(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// Encode renders the scenario as canonical JSON: compact, struct-field
// order, sorted map keys, trailing newline. Encoding is a fixed point —
// Encode(Parse(Encode(s))) is byte-identical to Encode(s) — which is what
// lets the fuzzer's codec oracle demand byte equality and the corpus store
// reproducible specs. (Axis values are raw JSON and are compacted by the
// encoder, so a freshly parsed file's first encoding may differ from the
// file; every encoding after that is stable.)
func (s *Scenario) Encode() ([]byte, error) {
	data, err := json.Marshal(s)
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// MustEncode is Encode panicking on error (marshaling a validated scenario
// cannot fail).
func (s *Scenario) MustEncode() []byte {
	data, err := s.Encode()
	if err != nil {
		panic(err)
	}
	return data
}

// decode fills s from data, walking the document manually so that element
// indices ("tasks[2]") end up in error paths — a plain DisallowUnknownFields
// decode cannot report them.
func (s *Scenario) decode(data []byte) error {
	top, err := objectFields(data, "")
	if err != nil {
		return err
	}
	for _, key := range sortedKeys(top) {
		raw := top[key]
		switch key {
		case "version":
			err = unmarshalField(raw, &s.Version, key)
		case "name":
			err = unmarshalField(raw, &s.Name, key)
		case "brief":
			err = unmarshalField(raw, &s.Brief, key)
		case "machine":
			err = strictUnmarshal(raw, &s.Machine, key)
		case "policy":
			err = unmarshalField(raw, &s.Policy, key)
		case "options":
			err = strictUnmarshal(raw, &s.Options, key)
		case "tasks":
			err = s.decodeTasks(raw)
		case "warmup":
			err = unmarshalField(raw, &s.Warmup, key)
		case "measure":
			err = unmarshalField(raw, &s.Measure, key)
		case "seed":
			err = unmarshalField(raw, &s.Seed, key)
		case "faults":
			s.Faults = new(Faults)
			err = strictUnmarshal(raw, s.Faults, key)
		case "sim":
			s.Sim = new(Sim)
			err = strictUnmarshal(raw, s.Sim, key)
		case "sweep":
			err = s.decodeSweep(raw)
		default:
			err = errf("", "unknown field %q", key)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func (s *Scenario) decodeTasks(raw json.RawMessage) error {
	elems, err := arrayElems(raw, "tasks")
	if err != nil {
		return err
	}
	s.Tasks = make([]Task, len(elems))
	for i, e := range elems {
		path := fmt.Sprintf("tasks[%d]", i)
		fields, err := objectFields(e, path)
		if err != nil {
			return err
		}
		t := &s.Tasks[i]
		for _, key := range sortedKeys(fields) {
			fraw := fields[key]
			fpath := path + "." + key
			switch key {
			case "kind":
				err = unmarshalField(fraw, &t.Kind, fpath)
			case "app":
				err = unmarshalField(fraw, &t.App, fpath)
			case "lc_params":
				t.LCParams = new(LCParams)
				err = strictUnmarshal(fraw, t.LCParams, fpath)
			case "be_params":
				t.BEParams = new(BEParams)
				err = strictUnmarshal(fraw, t.BEParams, fpath)
			case "load_pct":
				err = unmarshalField(fraw, &t.LoadPct, fpath)
			case "interarrival":
				err = unmarshalField(fraw, &t.Interarrival, fpath)
			case "expected_bw":
				err = unmarshalField(fraw, &t.ExpectedBW, fpath)
			case "load":
				t.Load = new(LoadSpec)
				err = decodeLoad(fraw, t.Load, fpath)
			case "threads":
				err = unmarshalField(fraw, &t.Threads, fpath)
			default:
				err = errf(path, "unknown field %q", key)
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// decodeLoad walks a task's load stanza manually so phase and window
// indices ("tasks[0].load.phases[2].scale") land in error paths.
func decodeLoad(raw json.RawMessage, l *LoadSpec, path string) error {
	fields, err := objectFields(raw, path)
	if err != nil {
		return err
	}
	for _, key := range sortedKeys(fields) {
		fraw := fields[key]
		fpath := path + "." + key
		switch key {
		case "zipf_theta":
			err = unmarshalField(fraw, &l.ZipfTheta, fpath)
		case "repeat":
			err = unmarshalField(fraw, &l.Repeat, fpath)
		case "onoff":
			l.OnOff = new(LoadOnOff)
			err = strictUnmarshal(fraw, l.OnOff, fpath)
		case "phases":
			var elems []json.RawMessage
			if elems, err = arrayElems(fraw, fpath); err == nil {
				l.Phases = make([]LoadPhase, len(elems))
				for i, e := range elems {
					if err = strictUnmarshal(e, &l.Phases[i], fmt.Sprintf("%s[%d]", fpath, i)); err != nil {
						break
					}
				}
			}
		case "windows":
			var elems []json.RawMessage
			if elems, err = arrayElems(fraw, fpath); err == nil {
				l.Windows = make([]LoadWindow, len(elems))
				for i, e := range elems {
					if err = strictUnmarshal(e, &l.Windows[i], fmt.Sprintf("%s[%d]", fpath, i)); err != nil {
						break
					}
				}
			}
		default:
			err = errf(path, "unknown field %q", key)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func (s *Scenario) decodeSweep(raw json.RawMessage) error {
	elems, err := arrayElems(raw, "sweep")
	if err != nil {
		return err
	}
	s.Sweep = make([]Axis, len(elems))
	for i, e := range elems {
		path := fmt.Sprintf("sweep[%d]", i)
		if err := strictUnmarshal(e, &s.Sweep[i], path); err != nil {
			return err
		}
	}
	return nil
}

// objectFields decodes raw as a JSON object into its raw members.
func objectFields(raw json.RawMessage, path string) (map[string]json.RawMessage, error) {
	var m map[string]json.RawMessage
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, errf(path, "%s", jsonErr(err))
	}
	return m, nil
}

// arrayElems decodes raw as a JSON array of raw elements.
func arrayElems(raw json.RawMessage, path string) ([]json.RawMessage, error) {
	var elems []json.RawMessage
	if err := json.Unmarshal(raw, &elems); err != nil {
		return nil, errf(path, "%s", jsonErr(err))
	}
	return elems, nil
}

// unmarshalField decodes one scalar member, anchoring errors at path.
func unmarshalField(raw json.RawMessage, v any, path string) error {
	if err := json.Unmarshal(raw, v); err != nil {
		return errf(path, "%s", jsonErr(err))
	}
	return nil
}

// strictUnmarshal decodes a nested object rejecting unknown fields,
// anchoring errors at path (extended with the member the decoder blames,
// when it names one).
func strictUnmarshal(raw json.RawMessage, v any, path string) error {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		if ute, ok := err.(*json.UnmarshalTypeError); ok && ute.Field != "" {
			path += "." + ute.Field
		}
		return errf(path, "%s", jsonErr(err))
	}
	return nil
}

// jsonErr strips encoding/json's noise ("json: ...", type names) down to the
// useful part of the message.
func jsonErr(err error) string {
	msg := err.Error()
	msg = strings.TrimPrefix(msg, "json: ")
	if ute, ok := err.(*json.UnmarshalTypeError); ok {
		return fmt.Sprintf("cannot use JSON %s here", ute.Value)
	}
	return msg
}

// sortedKeys makes decode order (and therefore which unknown field is
// reported first) deterministic.
func sortedKeys(m map[string]json.RawMessage) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
