package scenario

import "pivot/internal/workload"

// ToWorkload converts the scenario-schema LC parameters to the simulator's
// form, field by field so the schema keeps a stable JSON surface independent
// of the simulator struct.
func (p *LCParams) ToWorkload() workload.LCParams {
	return workload.LCParams{
		Name:         p.Name,
		ChaseDepth:   p.ChaseDepth,
		ChaseLines:   p.ChaseLines,
		ChasePCs:     p.ChasePCs,
		PayloadLoads: p.PayloadLoads,
		PayloadLines: p.PayloadLines,
		PayloadSeq:   p.PayloadSeq,
		PayloadPCs:   p.PayloadPCs,
		ALUPerStep:   p.ALUPerStep,
		ALULat:       p.ALULat,
		StoresPerReq: p.StoresPerReq,
	}
}

// ToWorkload converts the scenario-schema BE parameters to the simulator's
// form.
func (p *BEParams) ToWorkload() workload.BEParams {
	return workload.BEParams{
		Name:        p.Name,
		StreamFrac:  p.StreamFrac,
		StreamLines: p.StreamLines,
		RandLines:   p.RandLines,
		StoreFrac:   p.StoreFrac,
		ALUPerMem:   p.ALUPerMem,
		MLP:         p.MLP,
		PCs:         p.PCs,
	}
}

// LCWorkload resolves the task's LC parameters: catalogue app or inline
// custom params. Call only on validated KindLC tasks.
func (t *Task) LCWorkload() workload.LCParams {
	if t.LCParams != nil {
		return t.LCParams.ToWorkload()
	}
	return workload.LCApps()[t.App]
}

// BEWorkload resolves the task's BE parameters: catalogue app or inline
// custom params. Call only on validated KindBE tasks.
func (t *Task) BEWorkload() workload.BEParams {
	if t.BEParams != nil {
		return t.BEParams.ToWorkload()
	}
	return workload.BEApps()[t.App]
}

// AppName is the task's application name: App, or the inline params' Name.
func (t *Task) AppName() string {
	if n := t.customName(); n != "" {
		return n
	}
	return t.App
}
