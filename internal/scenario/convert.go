package scenario

import (
	"pivot/internal/load"
	"pivot/internal/sim"
	"pivot/internal/workload"
)

// ToWorkload converts the scenario-schema LC parameters to the simulator's
// form, field by field so the schema keeps a stable JSON surface independent
// of the simulator struct.
func (p *LCParams) ToWorkload() workload.LCParams {
	return workload.LCParams{
		Name:         p.Name,
		ChaseDepth:   p.ChaseDepth,
		ChaseLines:   p.ChaseLines,
		ChasePCs:     p.ChasePCs,
		PayloadLoads: p.PayloadLoads,
		PayloadLines: p.PayloadLines,
		PayloadSeq:   p.PayloadSeq,
		PayloadPCs:   p.PayloadPCs,
		ALUPerStep:   p.ALUPerStep,
		ALULat:       p.ALULat,
		StoresPerReq: p.StoresPerReq,
	}
}

// ToWorkload converts the scenario-schema BE parameters to the simulator's
// form.
func (p *BEParams) ToWorkload() workload.BEParams {
	return workload.BEParams{
		Name:        p.Name,
		StreamFrac:  p.StreamFrac,
		StreamLines: p.StreamLines,
		RandLines:   p.RandLines,
		StoreFrac:   p.StoreFrac,
		ALUPerMem:   p.ALUPerMem,
		MLP:         p.MLP,
		PCs:         p.PCs,
	}
}

// LCWorkload resolves the task's LC parameters: catalogue app or inline
// custom params. Call only on validated KindLC tasks.
func (t *Task) LCWorkload() workload.LCParams {
	if t.LCParams != nil {
		return t.LCParams.ToWorkload()
	}
	return workload.LCApps()[t.App]
}

// BEWorkload resolves the task's BE parameters: catalogue app or inline
// custom params. Call only on validated KindBE tasks.
func (t *Task) BEWorkload() workload.BEParams {
	if t.BEParams != nil {
		return t.BEParams.ToWorkload()
	}
	return workload.BEApps()[t.App]
}

// ToLoad converts the scenario-schema load spec to the simulator's form,
// field by field. The base mean is not set here — the harness fills it from
// the task's calibrated or explicit inter-arrival time. A nil receiver
// yields the zero (stationary) spec.
func (l *LoadSpec) ToLoad() load.Spec {
	if l == nil {
		return load.Spec{}
	}
	out := load.Spec{
		ZipfTheta: l.ZipfTheta,
		Repeat:    l.Repeat,
	}
	for _, p := range l.Phases {
		out.Phases = append(out.Phases, load.Phase{
			Shape:  loadShape(p.Shape),
			Cycles: p.Cycles,
			Scale:  p.Scale,
			To:     p.To,
			Amp:    p.Amp,
			Period: p.Period,
		})
	}
	if l.OnOff != nil {
		out.OnOff = load.OnOff{
			OnMean:   l.OnOff.OnMean,
			OffMean:  l.OnOff.OffMean,
			OnScale:  l.OnOff.OnScale,
			OffScale: l.OnOff.OffScale,
		}
	}
	for _, w := range l.Windows {
		out.Windows = append(out.Windows, load.Window{
			From:  sim.Cycle(w.From),
			Until: sim.Cycle(w.Until),
		})
	}
	return out
}

// loadShape maps a validated shape name to the simulator's enum.
func loadShape(name string) load.Shape {
	switch name {
	case ShapeRamp:
		return load.ShapeRamp
	case ShapeSine:
		return load.ShapeSine
	case ShapeOff:
		return load.ShapeOff
	default:
		return load.ShapeFlat
	}
}

// AppName is the task's application name: App, or the inline params' Name.
func (t *Task) AppName() string {
	if n := t.customName(); n != "" {
		return n
	}
	return t.App
}
