package scenario

import (
	"encoding/json"
	"fmt"
	"sort"

	"pivot/internal/workload"
)

// Builtins returns the named scenario behind every paper figure and
// extension, keyed by experiment id. These are the data the figure harnesses
// in internal/exp consume: the task mixes, operating points and method sets
// live here; the bespoke metrics and search loops (best-MBA ladders, max-BE
// sweeps, frontiers) stay in the harness. A fresh map (with fresh scenarios)
// is returned on every call.
func Builtins() map[string]*Scenario {
	lcNames := workload.LCNames()
	all4 := []string{"Default", "PARTIES", "CLITE", "PIVOT"}
	neo2 := []string{"CLITE", "PIVOT"}

	list := []*Scenario{
		{
			Version: Version, Name: "fig1",
			Brief:  "motivation mix: each LC at 70% vs the 7-thread iBench stressor, per method",
			Policy: "Default",
			Tasks:  []Task{lcTask(workload.ImgDNN, 70), beTask(workload.IBench, 7)},
			Sweep: []Axis{
				strAxis("tasks[0].app", lcNames...),
				strAxis("policy", "Default", "MBA", "MPAM", "PIVOT"),
			},
		},
		{
			Version: Version, Name: "fig2",
			Brief:  "bandwidth utilisation of the motivation mix per method",
			Policy: "MBA",
			Tasks:  []Task{lcTask(workload.ImgDNN, 70), beTask(workload.IBench, 7)},
			Sweep: []Axis{
				strAxis("tasks[0].app", lcNames...),
				strAxis("policy", "MBA", "MPAM", "FullPath", "PIVOT"),
			},
		},
		{
			Version: Version, Name: "fig3",
			Brief:  "max iBench throughput under QoS for the motivation mix",
			Policy: "MBA",
			Tasks:  []Task{lcTask(workload.ImgDNN, 70), beTask(workload.IBench, 7)},
			Sweep: []Axis{
				strAxis("tasks[0].app", lcNames...),
				strAxis("policy", "MBA", "MPAM", "FullPath", "PIVOT"),
			},
		},
		{
			Version: Version, Name: "fig5",
			Brief:  "cycle split of Masstree's critical loads (alone / co-located / full path)",
			Policy: "Default",
			Tasks:  []Task{lcTask(workload.Masstree, 70), beTask(workload.IBench, 7)},
		},
		{
			Version: Version, Name: "fig6",
			Brief:  "normalized p95 under FullPath vs iBench thread count",
			Policy: "FullPath",
			Tasks:  []Task{lcTask(workload.ImgDNN, 70), beTask(workload.IBench, 7)},
			Sweep: []Axis{
				strAxis("tasks[0].app", lcNames...),
				intAxis("tasks[1].threads", 1, 3, 5, 7),
			},
		},
		{
			Version: Version, Name: "fig7",
			Brief:  "leave-one-out: one MSC not enforcing priority",
			Policy: "FullPath",
			Tasks:  []Task{lcTask(workload.ImgDNN, 70), beTask(workload.IBench, 7)},
			Sweep: []Axis{
				strAxis("tasks[0].app", lcNames...),
				strAxis("options.disable_msc", append([]string{""}, MSCNames()...)...),
			},
		},
		{
			Version: Version, Name: "fig8",
			Brief:  "offline profiling CDF: top static loads vs ROB stall share",
			Policy: "Default",
			Tasks:  []Task{closedLoopLC(workload.Silo)},
			Sweep: []Axis{
				strAxis("tasks[0].app", workload.Silo, workload.Moses),
			},
		},
		{
			Version: Version, Name: "fig12",
			Brief:  "run-alone load-latency calibration curves",
			Policy: "Default",
			Tasks:  []Task{closedLoopLC(workload.ImgDNN)},
			Sweep: []Axis{
				strAxis("tasks[0].app", lcNames...),
			},
		},
		fig13Shape("fig13", "1 LC + iBench: max BE throughput per method and load", all4),
		fig13Shape("fig13emu", "EMU summary of the fig13 sweep", all4),
		fig13Shape("fig14", "normalized p95 behind fig13", all4),
		{
			Version: Version, Name: "fig15",
			Brief:  "2 LC + iBench heatmaps: max BE throughput per load pair",
			Policy: "Default",
			Tasks:  []Task{lcTask(workload.Xapian, 30), lcTask(workload.ImgDNN, 30), beTask(workload.IBench, 6)},
			Sweep: []Axis{
				tupleAxis([]string{"tasks[0].app", "tasks[1].app"},
					[]string{workload.Xapian, workload.ImgDNN},
					[]string{workload.Moses, workload.ImgDNN}),
				strAxis("policy", all4...),
			},
		},
		fig16Shape("fig16", "2 LC @40% + one CloudSuite BE task", all4[1:]),
		fig17Shape("fig17", "2 LC @40% + two CloudSuite BE tasks", all4[1:]),
		{
			Version: Version, Name: "fig18",
			Brief:  "2-LC co-location frontiers over five representative pairs",
			Policy: "Default",
			Tasks:  []Task{lcTask(workload.Xapian, 30), lcTask(workload.ImgDNN, 70)},
			Sweep: []Axis{
				tupleAxis([]string{"tasks[0].app", "tasks[1].app"},
					[]string{workload.Xapian, workload.ImgDNN},
					[]string{workload.Moses, workload.ImgDNN},
					[]string{workload.Silo, workload.Masstree},
					[]string{workload.Moses, workload.Silo},
					[]string{workload.ImgDNN, workload.Moses}),
				strAxis("policy", all4...),
			},
		},
		{
			Version: Version, Name: "fig19",
			Brief:  "3-LC frontier: (Xapian, Masstree) with Img-DNN at low/high load",
			Policy: "Default",
			Tasks: []Task{lcTask(workload.Xapian, 30), lcTask(workload.Masstree, 70),
				lcTask(workload.ImgDNN, 10)},
			Sweep: []Axis{
				intAxis("tasks[2].load_pct", 10, 70),
				strAxis("policy", all4...),
			},
		},
		{
			Version: Version, Name: "fig20",
			Brief:  "criticality predictors: CBP variants vs PIVOT",
			Policy: "CBP",
			Tasks:  []Task{lcTask(workload.ImgDNN, 30), beTask(workload.IBench, 7)},
			Sweep: []Axis{
				strAxis("tasks[0].app", lcNames...),
				intAxis("tasks[0].load_pct", 30, 70),
				strAxis("policy", "CBP", "CBP+FullPath", "PIVOT"),
			},
		},
		{
			Version: Version, Name: "fig21",
			Brief:  "run-alone IPC and p95 at 70% max load",
			Policy: "Default",
			Tasks:  []Task{lcTask(workload.ImgDNN, 70)},
			Sweep: []Axis{
				strAxis("tasks[0].app", lcNames...),
			},
		},
		{
			Version: Version, Name: "fig22",
			Brief:  "RRBP table-size sensitivity under PIVOT",
			Policy: "PIVOT",
			Tasks:  []Task{lcTask(workload.ImgDNN, 70), beTask(workload.IBench, 7)},
			Sweep: []Axis{
				strAxis("tasks[0].app", lcNames...),
				intAxis("options.rrbp_entries", -1, 16, 32, 64, 128),
			},
		},
		{
			Version: Version, Name: "sens",
			Brief:  "the five 1-LC@70% + iBench training scenarios of §VI-C",
			Policy: "PIVOT",
			Tasks:  []Task{lcTask(workload.ImgDNN, 70), beTask(workload.IBench, 7)},
			Sweep: []Axis{
				strAxis("tasks[0].app", lcNames...),
			},
		},
		neoverse(fig13Shape("fig23", "fig13's sweep on the Neoverse machine", neo2)),
		neoverse(fig16Shape("fig24", "fig16's scenarios on the Neoverse machine", neo2)),
		neoverse(fig17Shape("fig25", "fig17's scenarios on the Neoverse machine", neo2)),
		{
			Version: Version, Name: "hybrid",
			Brief:  "§VII extension: hybrid strong isolation mixes",
			Policy: "PIVOT",
			Tasks:  []Task{lcTask(workload.Masstree, 70), beTask(workload.IBench, 7)},
			Sweep: []Axis{
				strAxis("tasks[0].app", workload.Masstree, workload.Moses),
			},
		},
		{
			Version: Version, Name: "noprofile",
			Brief:  "§VII extension: PIVOT without offline profiling",
			Policy: "PIVOT",
			Tasks:  []Task{lcTask(workload.Microservice, 70), beTask(workload.IBench, 7)},
			Sweep: []Axis{
				strAxis("tasks[0].app", workload.Microservice, workload.Moses),
			},
		},
		{
			Version: Version, Name: "prefetch",
			Brief:  "ablation: explicit stride prefetcher on streaming-payload LC tasks",
			Policy: "PIVOT",
			Tasks:  []Task{lcTask(workload.ImgDNN, 70), beTask(workload.IBench, 7)},
			Sweep: []Axis{
				strAxis("tasks[0].app", workload.ImgDNN, workload.Masstree),
				boolAxis("options.prefetch", false, true),
			},
		},
	}

	out := make(map[string]*Scenario, len(list))
	for _, s := range list {
		if _, dup := out[s.Name]; dup {
			panic("scenario: duplicate builtin " + s.Name)
		}
		out[s.Name] = s
	}
	return out
}

// fig13Shape is the 1 LC + 7-thread iBench load sweep shared by fig13/14/23.
func fig13Shape(name, brief string, policies []string) *Scenario {
	return &Scenario{
		Version: Version, Name: name, Brief: brief,
		Policy: policies[0],
		Tasks:  []Task{lcTask(workload.ImgDNN, 70), beTask(workload.IBench, 7)},
		Sweep: []Axis{
			strAxis("tasks[0].app", workload.LCNames()...),
			intAxis("tasks[0].load_pct", 10, 30, 50, 70, 90),
			strAxis("policy", policies...),
		},
	}
}

// fig16Shape is the 2 LC @40% + one CloudSuite BE mix shared by fig16/24.
func fig16Shape(name, brief string, policies []string) *Scenario {
	return &Scenario{
		Version: Version, Name: name, Brief: brief,
		Policy: policies[0],
		Tasks: []Task{lcTask(workload.Xapian, 40), lcTask(workload.ImgDNN, 40),
			beTask(workload.DataAn, 6)},
		Sweep: []Axis{
			tupleAxis([]string{"tasks[0].app", "tasks[1].app", "tasks[2].app"},
				[]string{workload.Xapian, workload.ImgDNN, workload.DataAn},
				[]string{workload.Moses, workload.Silo, workload.GraphAn},
				[]string{workload.Masstree, workload.Xapian, workload.InMemAn}),
			strAxis("policy", policies...),
		},
	}
}

// fig17Shape is the 2 LC @40% + two CloudSuite BE mix shared by fig17/25.
func fig17Shape(name, brief string, policies []string) *Scenario {
	return &Scenario{
		Version: Version, Name: name, Brief: brief,
		Policy: policies[0],
		Tasks: []Task{lcTask(workload.Xapian, 40), lcTask(workload.ImgDNN, 40),
			beTask(workload.DataAn, 3), beTask(workload.GraphAn, 3)},
		Sweep: []Axis{
			tupleAxis([]string{"tasks[0].app", "tasks[1].app", "tasks[2].app", "tasks[3].app"},
				[]string{workload.Xapian, workload.ImgDNN, workload.DataAn, workload.GraphAn},
				[]string{workload.Moses, workload.Silo, workload.GraphAn, workload.InMemAn},
				[]string{workload.Masstree, workload.Xapian, workload.DataAn, workload.InMemAn}),
			strAxis("policy", policies...),
		},
	}
}

// neoverse puts a scenario on the Table III machine preset.
func neoverse(s *Scenario) *Scenario {
	s.Machine.Preset = PresetNeoverse
	return s
}

// Builtin returns one builtin scenario by experiment id.
func Builtin(id string) (*Scenario, bool) {
	s, ok := Builtins()[id]
	return s, ok
}

// MustBuiltin is Builtin panicking on an unknown id; the registry's shape is
// pinned by this package's tests, so figure harnesses use it unconditionally.
func MustBuiltin(id string) *Scenario {
	s, ok := Builtin(id)
	if !ok {
		panic("scenario: unknown builtin " + id)
	}
	return s
}

// BuiltinIDs lists the builtin scenario ids, sorted.
func BuiltinIDs() []string {
	reg := Builtins()
	out := make([]string, 0, len(reg))
	for id := range reg {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// lcTask places a catalogue LC app at a percentage of its max load.
func lcTask(app string, loadPct int) Task {
	return Task{Kind: KindLC, App: app, LoadPct: loadPct}
}

// closedLoopLC places a catalogue LC app issuing back-to-back requests.
func closedLoopLC(app string) Task {
	return Task{Kind: KindLC, App: app}
}

// beTask places n threads of a catalogue BE app.
func beTask(app string, threads int) Task {
	return Task{Kind: KindBE, App: app, Threads: threads}
}

func strAxis(param string, vals ...string) Axis {
	return Axis{Param: param, Values: rawAll(vals)}
}

func intAxis(param string, vals ...int) Axis {
	return Axis{Param: param, Values: rawAll(vals)}
}

func boolAxis(param string, vals ...bool) Axis {
	return Axis{Param: param, Values: rawAll(vals)}
}

func tupleAxis(params []string, tuples ...[]string) Axis {
	return Axis{Params: params, Values: rawAll(tuples)}
}

func rawAll[T any](vals []T) []json.RawMessage {
	out := make([]json.RawMessage, len(vals))
	for i, v := range vals {
		b, err := json.Marshal(v)
		if err != nil {
			panic(fmt.Sprintf("scenario: marshal axis value: %v", err))
		}
		out[i] = b
	}
	return out
}
