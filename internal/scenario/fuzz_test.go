package scenario

import (
	"bytes"
	"testing"
)

// fuzzSeeds feeds every builtin's canonical encoding plus a few adversarial
// documents into a fuzz corpus.
func fuzzSeeds(f *testing.F) {
	for _, s := range Builtins() {
		f.Add(s.MustEncode())
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"version":1,"name":"t","policy":"Default",
	  "tasks":[{"kind":"lc","app":"silo","load_pct":70}],
	  "faults":{"stations":{"Bus":{"drop":0.01}}},
	  "sweep":[{"param":"machine.cores","values":[2,4]}]}`))
	f.Add([]byte(`{"version":1e999}`))
	f.Add([]byte("\xff\xfe not json"))
}

// FuzzDecode: whatever the strict codec accepts must re-encode to a stable
// fixed point — Parse → Encode → Parse → Encode is byte-identical and never
// panics.
func FuzzDecode(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, doc []byte) {
		s, err := Parse(doc)
		if err != nil {
			return // rejection is fine; panics and accept-loops are not
		}
		enc, err := s.Encode()
		if err != nil {
			t.Fatalf("accepted scenario does not encode: %v", err)
		}
		re, err := Parse(enc)
		if err != nil {
			t.Fatalf("codec rejects its own output: %v\n%s", err, enc)
		}
		if again := re.MustEncode(); !bytes.Equal(enc, again) {
			t.Fatalf("encode not a fixed point:\n%s\n%s", enc, again)
		}
	})
}

// FuzzValidate: any document the decoder lets through (strict or not) must
// survive Validate, Clone and Expand without panicking — errors are fine.
func FuzzValidate(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, doc []byte) {
		s, err := Parse(doc)
		if err != nil {
			return
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("Parse accepted but Validate rejects: %v", err)
		}
		if _, err := s.Clone().Expand(); err != nil {
			// Expansion may legitimately fail (unit budget); it must not panic.
			_ = err
		}
	})
}
