package profile

import "sort"

// ProfilerState is the serialisable form of a Profiler: per-PC load stats
// sorted by PC for deterministic encoding, plus the total load counter.
type ProfilerState struct {
	Stats      []LoadStat
	TotalLoads uint64
}

// SnapshotState captures the profiler's complete mutable state.
func (p *Profiler) SnapshotState() ProfilerState {
	s := ProfilerState{
		Stats:      make([]LoadStat, 0, len(p.stats)),
		TotalLoads: p.totalLoads,
	}
	for _, st := range p.stats {
		s.Stats = append(s.Stats, *st)
	}
	sort.Slice(s.Stats, func(i, j int) bool { return s.Stats[i].PC < s.Stats[j].PC })
	return s
}

// RestoreState overwrites the profiler's mutable state from a snapshot.
func (p *Profiler) RestoreState(s ProfilerState) {
	clear(p.stats)
	for _, st := range s.Stats {
		cp := st
		p.stats[st.PC] = &cp
	}
	p.totalLoads = s.TotalLoads
}
