// Package profile implements PIVOT's offline profiling phase (§IV-B): run
// the LC task against a stress BE workload, record per-static-load execution
// counts, LLC miss rates and ROB stall cycles, and select the *potential*
// performance-critical set. The selected set plays the role of the rewritten
// binary: a load "carries the extra instruction bit" iff its PC is in the
// set.
package profile

import (
	"sort"

	"pivot/internal/sim"
)

// LoadStat aggregates one static load's observed behaviour.
type LoadStat struct {
	PC          uint64
	Execs       uint64
	LLCMisses   uint64
	StallCycles uint64 // ROB-head stall cycles attributed to this PC
}

// MissRate returns the load's LLC miss rate.
func (s LoadStat) MissRate() float64 {
	if s.Execs == 0 {
		return 0
	}
	return float64(s.LLCMisses) / float64(s.Execs)
}

// Params are the three user-provided selection criteria with the paper's
// defaults (§IV-B).
type Params struct {
	// MinExecFreq is the minimal execution frequency relative to all loads
	// (default 0.5%): rarer loads are flagged normal regardless.
	MinExecFreq float64
	// MinLLCMissRate flags loads whose miss rate exceeds it (default 10%).
	MinLLCMissRate float64
	// TopStallFrac flags loads ranking in the top fraction by total ROB
	// stall cycles (default 5%).
	TopStallFrac float64
	// MaxSet caps the selected set, keeping the highest-stall loads. The
	// RRBP is a 64-entry tagless table, and §VI-C observes that at most ~64
	// potential loads are ever resident; a cap keeps a miss-heavy
	// application from flooding the table with aliases. Zero = uncapped.
	MaxSet int
}

// DefaultParams returns the paper's defaults: 0.5%, 10%, 5%, capped at the
// RRBP's 64 entries.
func DefaultParams() Params {
	return Params{MinExecFreq: 0.005, MinLLCMissRate: 0.10, TopStallFrac: 0.05, MaxSet: 64}
}

// CriticalSet is the output of offline profiling: the set of static loads
// whose potential-critical instruction bit is set by binary rewriting.
type CriticalSet map[uint64]bool

// Contains reports whether pc carries the potential-critical bit.
func (cs CriticalSet) Contains(pc uint64) bool { return cs[pc] }

// Profiler collects per-PC load statistics. Wire its OnLoadRetire into a
// core's hooks during the offline run.
type Profiler struct {
	stats      map[uint64]*LoadStat
	totalLoads uint64
}

// NewProfiler returns an empty profiler.
func NewProfiler() *Profiler {
	return &Profiler{stats: make(map[uint64]*LoadStat, 256)}
}

// OnLoadRetire records one retired load. It matches cpu.Hooks.OnLoadRetire.
func (p *Profiler) OnLoadRetire(pc uint64, stall sim.Cycle, llcMiss bool) {
	s := p.stats[pc]
	if s == nil {
		s = &LoadStat{PC: pc}
		p.stats[pc] = s
	}
	s.Execs++
	if llcMiss {
		s.LLCMisses++
	}
	s.StallCycles += uint64(stall)
	p.totalLoads++
}

// TotalLoads reports the number of retired loads observed.
func (p *Profiler) TotalLoads() uint64 { return p.totalLoads }

// Stats returns the per-PC statistics sorted by descending stall cycles.
func (p *Profiler) Stats() []LoadStat {
	out := make([]LoadStat, 0, len(p.stats))
	for _, s := range p.stats {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].StallCycles != out[j].StallCycles {
			return out[i].StallCycles > out[j].StallCycles
		}
		return out[i].PC < out[j].PC
	})
	return out
}

// Select applies the paper's three-step selection (§IV-B Step 2):
//  1. loads below the minimal execution frequency are flagged normal;
//  2. remaining loads are flagged potentially critical if their LLC miss
//     rate exceeds MinLLCMissRate, or
//  3. if they rank within the top TopStallFrac of loads by stall cycles.
func (p *Profiler) Select(params Params) CriticalSet {
	out := make(CriticalSet)
	if p.totalLoads == 0 {
		return out
	}
	stats := p.Stats() // sorted by stall cycles, descending
	minExecs := params.MinExecFreq * float64(p.totalLoads)

	// Rank cut: top TopStallFrac of static loads by stall cycles.
	cut := int(params.TopStallFrac * float64(len(stats)))
	if cut < 1 {
		cut = 1
	}
	for rank, s := range stats {
		if params.MaxSet > 0 && len(out) >= params.MaxSet {
			break // stats are stall-sorted: everything below ranks lower
		}
		if float64(s.Execs) < minExecs {
			continue // insignificant to LC performance
		}
		if s.MissRate() > params.MinLLCMissRate || rank < cut {
			out[s.PC] = true
		}
	}
	return out
}

// CDF returns (loadFrac, stallFrac) pairs for the Figure 8 plot: the
// cumulative share of ROB stall cycles covered by the top-k static loads,
// k = 1..n, both axes as fractions.
func (p *Profiler) CDF() (loadFrac, stallFrac []float64) {
	stats := p.Stats()
	var total uint64
	for _, s := range stats {
		total += s.StallCycles
	}
	if total == 0 || len(stats) == 0 {
		return nil, nil
	}
	var cum uint64
	for i, s := range stats {
		cum += s.StallCycles
		loadFrac = append(loadFrac, float64(i+1)/float64(len(stats)))
		stallFrac = append(stallFrac, float64(cum)/float64(total))
	}
	return loadFrac, stallFrac
}
