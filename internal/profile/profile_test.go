package profile

import (
	"testing"
	"testing/quick"

	"pivot/internal/sim"
)

// feed records n retirements of pc with the given stall and miss pattern.
func feed(p *Profiler, pc uint64, n int, stall sim.Cycle, missEvery int) {
	for i := 0; i < n; i++ {
		miss := missEvery > 0 && i%missEvery == 0
		p.OnLoadRetire(pc, stall, miss)
	}
}

func TestSelectionRules(t *testing.T) {
	p := NewProfiler()
	// A hot chase load: frequent, always missing, huge stall.
	feed(p, 0x100, 1000, 200, 1)
	// A frequent cache-friendly load: low miss rate, little stall.
	feed(p, 0x200, 1000, 2, 100) // 1% misses
	// A rare load: below the execution-frequency floor no matter what.
	feed(p, 0x300, 3, 500, 1)
	// A frequent high-miss payload load with modest stall.
	feed(p, 0x400, 1000, 5, 2) // 50% misses

	set := p.Select(Params{MinExecFreq: 0.005, MinLLCMissRate: 0.10, TopStallFrac: 0.05})
	if !set.Contains(0x100) {
		t.Fatal("chase load not selected")
	}
	if set.Contains(0x300) {
		t.Fatal("rare load selected despite frequency floor")
	}
	if !set.Contains(0x400) {
		t.Fatal("high-miss-rate load not selected (rule 2)")
	}
	if set.Contains(0x200) {
		t.Fatal("cache-friendly low-stall load selected")
	}
}

func TestTopStallRankRule(t *testing.T) {
	p := NewProfiler()
	// 40 loads, none exceeding the miss-rate rule, one with dominant stall.
	for i := 0; i < 40; i++ {
		feed(p, uint64(0x1000+i*4), 100, sim.Cycle(1+i%3), 100)
	}
	feed(p, 0x5000, 100, 1000, 100) // low miss rate but top stall
	set := p.Select(Params{MinExecFreq: 0.001, MinLLCMissRate: 0.99, TopStallFrac: 0.05})
	if !set.Contains(0x5000) {
		t.Fatal("top-stall load not selected by the ranking rule")
	}
	if len(set) > 3 {
		t.Fatalf("ranking rule selected %d loads, want the top ~5%%", len(set))
	}
}

func TestMaxSetCapKeepsHighestStall(t *testing.T) {
	p := NewProfiler()
	for i := 0; i < 100; i++ {
		feed(p, uint64(0x1000+i*4), 100, sim.Cycle(100-i), 1) // all miss-heavy
	}
	set := p.Select(Params{MinExecFreq: 0, MinLLCMissRate: 0.1, TopStallFrac: 0.05, MaxSet: 10})
	if len(set) != 10 {
		t.Fatalf("capped set size = %d, want 10", len(set))
	}
	if !set.Contains(0x1000) {
		t.Fatal("cap dropped the highest-stall load")
	}
	if set.Contains(0x1000 + 99*4) {
		t.Fatal("cap kept the lowest-stall load")
	}
}

func TestCDFMonotonicProperty(t *testing.T) {
	f := func(stalls []uint16) bool {
		p := NewProfiler()
		for i, s := range stalls {
			p.OnLoadRetire(uint64(0x100+i*4), sim.Cycle(s), true)
		}
		loadFrac, stallFrac := p.CDF()
		if len(stalls) == 0 {
			return loadFrac == nil
		}
		last := 0.0
		for i := range stallFrac {
			if stallFrac[i]+1e-9 < last {
				return false // must be non-decreasing
			}
			last = stallFrac[i]
			if loadFrac[i] < 0 || loadFrac[i] > 1 {
				return false
			}
		}
		// The CDF ends at 1 when any stall exists.
		var total uint64
		for _, s := range stalls {
			total += uint64(s)
		}
		if total > 0 && (stallFrac[len(stallFrac)-1] < 0.999) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestStatsSortedByStall(t *testing.T) {
	p := NewProfiler()
	feed(p, 0x1, 10, 5, 1)
	feed(p, 0x2, 10, 50, 1)
	feed(p, 0x3, 10, 20, 1)
	stats := p.Stats()
	for i := 1; i < len(stats); i++ {
		if stats[i].StallCycles > stats[i-1].StallCycles {
			t.Fatal("stats not sorted by descending stall")
		}
	}
	if p.TotalLoads() != 30 {
		t.Fatalf("total loads = %d, want 30", p.TotalLoads())
	}
}

func TestEmptyProfiler(t *testing.T) {
	p := NewProfiler()
	if set := p.Select(DefaultParams()); len(set) != 0 {
		t.Fatal("empty profiler selected loads")
	}
	if lf, sf := p.CDF(); lf != nil || sf != nil {
		t.Fatal("empty profiler produced a CDF")
	}
}

func TestMissRate(t *testing.T) {
	s := LoadStat{Execs: 4, LLCMisses: 1}
	if s.MissRate() != 0.25 {
		t.Fatalf("miss rate = %v, want 0.25", s.MissRate())
	}
	if (LoadStat{}).MissRate() != 0 {
		t.Fatal("zero-exec miss rate should be 0")
	}
}

func TestDefaultParamsMatchPaper(t *testing.T) {
	d := DefaultParams()
	if d.MinExecFreq != 0.005 || d.MinLLCMissRate != 0.10 || d.TopStallFrac != 0.05 {
		t.Fatalf("defaults drifted from the paper's §IV-B values: %+v", d)
	}
}
