package stats

// Sample is one epoch snapshot of every registered instrument.
type Sample struct {
	Cycle  uint64
	Values []float64 // parallel to the registry's registration order
}

// DefaultRingCap bounds retained samples when no capacity is given.
const DefaultRingCap = 4096

// Sampler snapshots a registry every epoch into a bounded ring of samples
// (oldest dropped), driven by the machine's tick loop. Counters and gauges
// sample their cumulative/instant value; rates sample the delta since the
// previous snapshot; distributions sample their observation count.
type Sampler struct {
	reg   *Registry
	epoch uint64 // cycles per sample (informational; the driver keeps time)

	ring []Sample
	head int // index of the oldest sample
	n    int

	prev    []float64 // previous raw reads, for rate deltas
	hasPrev bool
}

// NewSampler builds a sampler over reg. epochCycles records the intended
// sampling period for the dump schema; ringCap bounds retained samples
// (0 = DefaultRingCap).
func NewSampler(reg *Registry, epochCycles uint64, ringCap int) *Sampler {
	if ringCap <= 0 {
		ringCap = DefaultRingCap
	}
	return &Sampler{
		reg:   reg,
		epoch: epochCycles,
		ring:  make([]Sample, 0, ringCap),
		prev:  make([]float64, reg.Len()),
	}
}

// EpochCycles reports the configured sampling period.
func (s *Sampler) EpochCycles() uint64 { return s.epoch }

// Sample snapshots every instrument at the given cycle.
func (s *Sampler) Sample(cycle uint64) {
	vals := make([]float64, len(s.reg.order))
	for i, in := range s.reg.order {
		raw := in.Value()
		switch in.kind {
		case KindRate:
			if s.hasPrev {
				vals[i] = round(raw - s.prev[i])
			} else {
				vals[i] = round(raw)
			}
		default:
			vals[i] = round(raw)
		}
		s.prev[i] = raw
	}
	s.hasPrev = true

	smp := Sample{Cycle: cycle, Values: vals}
	if len(s.ring) < cap(s.ring) {
		s.ring = append(s.ring, smp)
		s.n = len(s.ring)
		return
	}
	// Ring full: overwrite the oldest.
	s.ring[s.head] = smp
	s.head = (s.head + 1) % len(s.ring)
}

// Len reports the number of retained samples.
func (s *Sampler) Len() int {
	if s == nil {
		return 0
	}
	return len(s.ring)
}

// Samples returns the retained samples oldest-first.
func (s *Sampler) Samples() []Sample {
	if s == nil || len(s.ring) == 0 {
		return nil
	}
	out := make([]Sample, 0, len(s.ring))
	for i := 0; i < len(s.ring); i++ {
		out = append(out, s.ring[(s.head+i)%len(s.ring)])
	}
	return out
}
