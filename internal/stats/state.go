package stats

// DistributionState is the serialisable form of a Distribution: the moment
// accumulators, the reservoir contents and the replacement-RNG cursor. The
// seed is rebuilt from the instrument name at construction.
type DistributionState struct {
	Count    uint64
	Sum      float64
	Min, Max float64
	Res      []float64
	RNG      uint64
}

// SnapshotState captures the distribution's complete mutable state.
func (d *Distribution) SnapshotState() DistributionState {
	return DistributionState{
		Count: d.count, Sum: d.sum, Min: d.min, Max: d.max,
		Res: append([]float64(nil), d.res...),
		RNG: d.rng,
	}
}

// RestoreState overwrites the distribution's mutable state from a snapshot
// taken on an identically named and sized distribution.
func (d *Distribution) RestoreState(s DistributionState) {
	d.count = s.Count
	d.sum = s.Sum
	d.min = s.Min
	d.max = s.Max
	d.res = append(d.res[:0], s.Res...)
	if s.RNG != 0 {
		d.rng = s.RNG
	} else {
		d.rng = d.seed
	}
}

// SamplerState is the serialisable form of a Sampler: the sample ring
// (oldest-first), the previous raw reads for rate deltas, and the epoch
// bookkeeping. The registry wiring is rebuilt at construction.
type SamplerState struct {
	Samples []Sample // oldest-first
	Prev    []float64
	HasPrev bool
}

// SnapshotState captures the sampler's complete mutable state.
func (s *Sampler) SnapshotState() SamplerState {
	st := SamplerState{
		Samples: make([]Sample, 0, len(s.ring)),
		Prev:    append([]float64(nil), s.prev...),
		HasPrev: s.hasPrev,
	}
	for _, smp := range s.Samples() {
		st.Samples = append(st.Samples, Sample{
			Cycle:  smp.Cycle,
			Values: append([]float64(nil), smp.Values...),
		})
	}
	return st
}

// RestoreState overwrites the sampler's mutable state from a snapshot taken
// on a sampler over an identically populated registry.
func (s *Sampler) RestoreState(st SamplerState) {
	ringCap := cap(s.ring)
	s.ring = s.ring[:0]
	s.head = 0
	samples := st.Samples
	if len(samples) > ringCap {
		samples = samples[len(samples)-ringCap:]
	}
	for _, smp := range samples {
		s.ring = append(s.ring, Sample{
			Cycle:  smp.Cycle,
			Values: append([]float64(nil), smp.Values...),
		})
	}
	s.n = len(s.ring)
	copy(s.prev, st.Prev)
	s.hasPrev = st.HasPrev
}
