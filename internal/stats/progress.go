package stats

import (
	"encoding/json"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Progress is a live telemetry feed for long runs: the simulation (or the
// sweep harness) bumps atomic counters from its own goroutine, and the
// -debug-addr HTTP server reads a consistent-enough snapshot from another.
// It observes the run, never the simulated state, so feeding it cannot
// change a result.
type Progress struct {
	start time.Time

	cycle       atomic.Uint64 // current simulated cycle of the active run
	goalCycles  atomic.Uint64 // target cycles of the active run (0 = unknown)
	baseCycles  atomic.Uint64 // simulated cycles completed by finished units
	unitsDone   atomic.Uint64
	unitsTotal  atomic.Uint64
	unitsFailed atomic.Uint64

	mu    sync.Mutex
	label string
}

// NewProgress starts a feed; the wall clock for cycles/sec starts now.
func NewProgress() *Progress {
	return &Progress{start: time.Now()}
}

// SetCycle publishes the active run's current simulated cycle.
func (p *Progress) SetCycle(c uint64) {
	if p == nil {
		return
	}
	p.cycle.Store(c)
}

// SetGoal publishes the active run's target cycle count (0 = unknown).
func (p *Progress) SetGoal(c uint64) {
	if p == nil {
		return
	}
	p.goalCycles.Store(c)
}

// SetUnits declares the sweep size (how many jobs the harness will run).
func (p *Progress) SetUnits(total uint64) {
	if p == nil {
		return
	}
	p.unitsTotal.Store(total)
}

// UnitDone marks one sweep unit finished, folding the active run's cycles
// into the completed base so cycles/sec stays monotonic across units.
func (p *Progress) UnitDone(failed bool) {
	if p == nil {
		return
	}
	p.baseCycles.Add(p.cycle.Swap(0))
	p.unitsDone.Add(1)
	if failed {
		p.unitsFailed.Add(1)
	}
}

// SetLabel names what is currently running (a scenario, a sweep point).
func (p *Progress) SetLabel(s string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.label = s
	p.mu.Unlock()
}

// ProgressSnapshot is the /progress JSON document.
type ProgressSnapshot struct {
	Label        string  `json:"label,omitempty"`
	Cycle        uint64  `json:"cycle"`
	GoalCycles   uint64  `json:"goalCycles,omitempty"`
	TotalCycles  uint64  `json:"totalCycles"` // completed units + active run
	ElapsedSec   float64 `json:"elapsedSec"`
	CyclesPerSec float64 `json:"cyclesPerSec"` // wall-clock rate since start
	ETASec       float64 `json:"etaSec,omitempty"`
	UnitsDone    uint64  `json:"unitsDone"`
	UnitsTotal   uint64  `json:"unitsTotal,omitempty"`
	UnitsFailed  uint64  `json:"unitsFailed,omitempty"`
}

// Snapshot reads the feed. Counters are read individually (each atomically),
// which is exact enough for telemetry.
func (p *Progress) Snapshot() ProgressSnapshot {
	p.mu.Lock()
	label := p.label
	p.mu.Unlock()
	s := ProgressSnapshot{
		Label:       label,
		Cycle:       p.cycle.Load(),
		GoalCycles:  p.goalCycles.Load(),
		UnitsDone:   p.unitsDone.Load(),
		UnitsTotal:  p.unitsTotal.Load(),
		UnitsFailed: p.unitsFailed.Load(),
	}
	s.TotalCycles = p.baseCycles.Load() + s.Cycle
	s.ElapsedSec = time.Since(p.start).Seconds()
	if s.ElapsedSec > 0 {
		s.CyclesPerSec = float64(s.TotalCycles) / s.ElapsedSec
	}
	// ETA for the active run from its goal; for a sweep, scale by units left.
	if s.CyclesPerSec > 0 {
		if s.GoalCycles > s.Cycle {
			s.ETASec = float64(s.GoalCycles-s.Cycle) / s.CyclesPerSec
		}
		if s.UnitsTotal > s.UnitsDone && s.UnitsDone > 0 {
			perUnit := s.ElapsedSec / float64(s.UnitsDone)
			s.ETASec += perUnit * float64(s.UnitsTotal-s.UnitsDone-1)
		}
	}
	return s
}

// handler serves the feed as JSON.
func (p *Progress) handler(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(p.Snapshot()) //nolint:errcheck // best-effort debug endpoint
}
