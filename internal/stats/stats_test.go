package stats

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup", func() uint64 { return 0 })
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Gauge("dup", func() float64 { return 0 })
}

func TestRegistryLookup(t *testing.T) {
	r := NewRegistry()
	in := r.Counter("a.count", func() uint64 { return 7 })
	if r.Len() != 1 || r.Get("a.count") != in || r.Get("missing") != nil {
		t.Fatal("registry lookup broken")
	}
	if in.Name() != "a.count" || in.Kind() != KindCounter || in.Value() != 7 {
		t.Fatalf("instrument = %s/%v/%v", in.Name(), in.Kind(), in.Value())
	}
}

// TestSamplerKinds checks the per-kind sampling semantics: counters and
// gauges record the raw read, rates record the delta since the previous
// epoch (first sample = cumulative).
func TestSamplerKinds(t *testing.T) {
	var count uint64
	var level float64
	r := NewRegistry()
	r.Counter("c", func() uint64 { return count })
	r.Gauge("g", func() float64 { return level })
	r.Rate("r", func() uint64 { return count })

	s := NewSampler(r, 100, 0)
	count, level = 10, 1.5
	s.Sample(100)
	count, level = 25, 0.5
	s.Sample(200)

	smp := s.Samples()
	if len(smp) != 2 {
		t.Fatalf("samples = %d, want 2", len(smp))
	}
	// Registration order: c, g, r.
	if got := smp[0].Values; got[0] != 10 || got[1] != 1.5 || got[2] != 10 {
		t.Fatalf("first sample = %v", got)
	}
	if got := smp[1].Values; got[0] != 25 || got[1] != 0.5 || got[2] != 15 {
		t.Fatalf("second sample = %v (rate delta should be 15)", got)
	}
	if smp[0].Cycle != 100 || smp[1].Cycle != 200 {
		t.Fatalf("cycles = %d,%d", smp[0].Cycle, smp[1].Cycle)
	}
}

func TestSamplerRingWraps(t *testing.T) {
	var v uint64
	r := NewRegistry()
	r.Counter("c", func() uint64 { return v })
	s := NewSampler(r, 10, 4)
	for i := uint64(1); i <= 10; i++ {
		v = i
		s.Sample(i * 10)
	}
	smp := s.Samples()
	if len(smp) != 4 {
		t.Fatalf("ring kept %d samples, want 4", len(smp))
	}
	// Oldest-first: cycles 70..100.
	for i, want := range []uint64{70, 80, 90, 100} {
		if smp[i].Cycle != want {
			t.Fatalf("sample %d cycle = %d, want %d", i, smp[i].Cycle, want)
		}
	}
	if smp[3].Values[0] != 10 {
		t.Fatalf("latest value = %v, want 10", smp[3].Values[0])
	}
}

// TestDistributionDeterministic drives two same-named distributions past
// their reservoir capacity with the same observation stream and requires
// identical summaries — the reservoir RNG is seeded from the name.
func TestDistributionDeterministic(t *testing.T) {
	obs := func(d *Distribution) {
		x := uint64(99)
		for i := 0; i < 5000; i++ {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			d.Observe(float64(x % 100000))
		}
	}
	d1 := newDistribution("lat", 64)
	d2 := newDistribution("lat", 64)
	obs(d1)
	obs(d2)
	if d1.Summary() != d2.Summary() {
		t.Fatalf("same stream diverged: %+v vs %+v", d1.Summary(), d2.Summary())
	}
	if d1.Count() != 5000 {
		t.Fatalf("count = %d", d1.Count())
	}

	// Reset restores the RNG too: replaying the stream reproduces the
	// summary exactly.
	before := d1.Summary()
	d1.Reset()
	if d1.Count() != 0 || d1.Mean() != 0 || d1.Quantile(95) != 0 {
		t.Fatal("Reset left state behind")
	}
	obs(d1)
	if d1.Summary() != before {
		t.Fatalf("post-Reset replay diverged: %+v vs %+v", d1.Summary(), before)
	}
}

func TestDistributionSmall(t *testing.T) {
	d := newDistribution("small", 8)
	for _, v := range []float64{5, 1, 9, 3} {
		d.Observe(v)
	}
	s := d.Summary()
	if s.Count != 4 || s.Min != 1 || s.Max != 9 || s.Mean != 4.5 {
		t.Fatalf("summary = %+v", s)
	}
	if s.P50 != 3 || s.P99 != 9 {
		t.Fatalf("p50=%v p99=%v", s.P50, s.P99)
	}
}

// TestDumpDeterministic builds the same registry+sampler twice and requires
// byte-identical JSON and CSV exports.
func TestDumpDeterministic(t *testing.T) {
	build := func() Dump {
		var c uint64
		r := NewRegistry()
		// Register out of name order to check the export sorts.
		r.Gauge("z.depth", func() float64 { return float64(c) / 2 })
		r.Counter("a.served", func() uint64 { return c })
		r.Rate("m.rate", func() uint64 { return c * 3 })
		d := r.Distribution("k.lat", 16)
		s := NewSampler(r, 50, 0)
		for i := uint64(1); i <= 5; i++ {
			c = i * 7
			d.Observe(float64(i))
			s.Sample(i * 50)
		}
		return r.Dump(s)
	}
	var j1, j2, c1, c2 bytes.Buffer
	d1, d2 := build(), build()
	if err := d1.WriteJSON(&j1); err != nil {
		t.Fatal(err)
	}
	if err := d2.WriteJSON(&j2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1.Bytes(), j2.Bytes()) {
		t.Fatal("JSON dumps differ between identical builds")
	}
	if err := d1.WriteCSV(&c1); err != nil {
		t.Fatal(err)
	}
	if err := d2.WriteCSV(&c2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(c1.Bytes(), c2.Bytes()) {
		t.Fatal("CSV dumps differ between identical builds")
	}

	// Instruments are exported sorted by name.
	names := make([]string, len(d1.Instruments))
	for i, in := range d1.Instruments {
		names[i] = in.Name
	}
	want := []string{"a.served", "k.lat", "m.rate", "z.depth"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("export order = %v, want %v", names, want)
		}
	}
	if d1.Instruments[1].Dist == nil || d1.Instruments[1].Dist.Count != 5 {
		t.Fatalf("distribution summary missing: %+v", d1.Instruments[1])
	}
	if d1.Series == nil || len(d1.Series.Cycles) != 5 || d1.Series.EpochCycles != 50 {
		t.Fatalf("series = %+v", d1.Series)
	}
	// Rate series carries deltas: reads are 7,14,21,... so deltas are 21.
	if col := d1.Series.Values["m.rate"]; col[0] != 21 || col[4] != 21 {
		t.Fatalf("rate series = %v", col)
	}
}

func TestDumpCSVShape(t *testing.T) {
	var c uint64 = 3
	r := NewRegistry()
	r.Counter("served", func() uint64 { return c })
	s := NewSampler(r, 10, 0)
	s.Sample(10)
	var buf bytes.Buffer
	if err := r.Dump(s).WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	want := "name,kind,value\nserved,counter,3\n\ncycle,served\n10,3\n"
	if got != want {
		t.Fatalf("CSV = %q, want %q", got, want)
	}
}

func TestDumpTable(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits", func() uint64 { return 42 })
	tbl := r.Dump(nil).Table("title")
	s := tbl.String()
	if !strings.Contains(s, "hits") || !strings.Contains(s, "42") {
		t.Fatalf("table missing instrument row:\n%s", s)
	}
}

// TestTimelineJSON asserts the exporter emits a Chrome trace-event object
// that round-trips through encoding/json with the expected phases.
func TestTimelineJSON(t *testing.T) {
	var level float64
	r := NewRegistry()
	r.Gauge("q.depth", func() float64 { return level })
	r.Counter("q.count", func() uint64 { return uint64(level) }) // filtered out below
	s := NewSampler(r, 100, 0)
	level = 2
	s.Sample(100)
	level = 5
	s.Sample(200)

	tl := NewTimeline()
	tl.ProcessName(1, "run 1")
	tl.ThreadName(1, 0, "core 0")
	tl.Complete(1, 0, "pc 0x40", "lc-load", 150, 30, map[string]any{"critical": true})
	tl.Instant(1, 0, "promoted", "starvation", 180)
	tl.AddSeries(1, r, s, func(in *Instrument) bool { return in.Kind() == KindGauge })

	var buf bytes.Buffer
	if err := tl.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  int            `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("timeline is not valid JSON: %v", err)
	}
	if file.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", file.DisplayTimeUnit)
	}
	phases := map[string]int{}
	for _, ev := range file.TraceEvents {
		phases[ev.Ph]++
		if ev.Name == "q.count" {
			t.Fatal("filtered instrument leaked into the timeline")
		}
	}
	// 2 metadata, 1 complete, 1 instant, 2 gauge counter samples.
	if phases["M"] != 2 || phases["X"] != 1 || phases["i"] != 1 || phases["C"] != 2 {
		t.Fatalf("phase histogram = %v", phases)
	}
	for _, ev := range file.TraceEvents {
		if ev.Ph == "X" {
			if ev.Ts != 150.0/CyclesPerTick || ev.Dur != 30.0/CyclesPerTick {
				t.Fatalf("complete event ts/dur = %v/%v", ev.Ts, ev.Dur)
			}
		}
	}
}

func TestServeDebug(t *testing.T) {
	addr, err := ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/debug/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "/gc/") {
		t.Fatalf("debug metrics: status %d, body %q...", resp.StatusCode, string(body[:min(len(body), 80)]))
	}
	resp2, err := http.Get("http://" + addr + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("pprof index: status %d", resp2.StatusCode)
	}
}
