// Package stats is the simulator's gem5-style statistics framework: a
// registry of named, typed instruments that every simulated component
// registers into at construction, an epoch-driven time-series sampler that
// snapshots the registry into a bounded ring, and exporters (flat JSON/CSV,
// an aligned-text summary, and a Chrome trace-event timeline loadable in
// Perfetto).
//
// The framework is strictly observational: instruments read component state,
// they never own it, so enabling or disabling sampling cannot change a
// simulated result. Everything is deterministic — two runs from the same seed
// produce byte-identical dumps — which makes a stats dump diffable across
// commits the way gem5's stats.txt is.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Kind types an instrument, mirroring gem5's Scalar / Formula / Distribution
// split.
type Kind uint8

// Instrument kinds.
const (
	// KindCounter is a monotonically increasing count read from the owning
	// component (requests served, rows missed, instructions committed).
	KindCounter Kind = iota
	// KindGauge is an instantaneous level (queue depth, ROB occupancy,
	// bandwidth-usage fraction); the time series of gauges is what the
	// timeline exporter charts.
	KindGauge
	// KindRate is a counter whose *series* records per-epoch deltas rather
	// than the cumulative value, for bandwidth-over-time style plots.
	KindRate
	// KindDist is a Distribution with reservoir-sampled percentiles.
	KindDist
)

// String names the kind for the dump schema.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindRate:
		return "rate"
	case KindDist:
		return "dist"
	default:
		return "?"
	}
}

// Instrument is one named statistic. Scalar instruments are backed by a read
// closure into the owning component; distributions own their reservoir.
type Instrument struct {
	name string
	kind Kind
	read func() float64 // scalar kinds
	dist *Distribution  // KindDist
}

// Name returns the instrument's registered name.
func (in *Instrument) Name() string { return in.name }

// Kind returns the instrument's kind.
func (in *Instrument) Kind() Kind { return in.kind }

// Value reads the instrument's current scalar value (a distribution reads as
// its observation count).
func (in *Instrument) Value() float64 {
	if in.dist != nil {
		return float64(in.dist.Count())
	}
	return in.read()
}

// Dist returns the backing distribution (nil for scalar instruments).
func (in *Instrument) Dist() *Distribution { return in.dist }

// Registry holds a simulation's instruments. Names are hierarchical
// dot-paths ("cpu0.rob_occupancy", "dram.row_hits") and must be unique;
// registering a duplicate panics, as component wiring is programmer-supplied,
// not user input. Not safe for concurrent use; the simulator is
// single-goroutine.
type Registry struct {
	byName map[string]*Instrument
	order  []*Instrument // registration order; exports sort by name
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*Instrument)}
}

func (r *Registry) add(in *Instrument) *Instrument {
	if _, dup := r.byName[in.name]; dup {
		panic(fmt.Sprintf("stats: duplicate instrument %q", in.name))
	}
	r.byName[in.name] = in
	r.order = append(r.order, in)
	return in
}

// Counter registers a monotonic counter backed by read.
func (r *Registry) Counter(name string, read func() uint64) *Instrument {
	return r.add(&Instrument{name: name, kind: KindCounter,
		read: func() float64 { return float64(read()) }})
}

// Gauge registers an instantaneous level backed by read.
func (r *Registry) Gauge(name string, read func() float64) *Instrument {
	return r.add(&Instrument{name: name, kind: KindGauge, read: read})
}

// Rate registers a counter whose sampled series records per-epoch deltas.
func (r *Registry) Rate(name string, read func() uint64) *Instrument {
	return r.add(&Instrument{name: name, kind: KindRate,
		read: func() float64 { return float64(read()) }})
}

// Distribution registers and returns a reservoir distribution of up to size
// samples (0 = DefaultReservoir). The reservoir's replacement RNG is seeded
// from the instrument name, so dumps are reproducible run-to-run.
func (r *Registry) Distribution(name string, size int) *Distribution {
	d := newDistribution(name, size)
	r.add(&Instrument{name: name, kind: KindDist, dist: d})
	return d
}

// Len reports the number of registered instruments.
func (r *Registry) Len() int { return len(r.order) }

// Get returns the instrument registered under name, or nil.
func (r *Registry) Get(name string) *Instrument { return r.byName[name] }

// Each calls f for every instrument in registration order.
func (r *Registry) Each(f func(in *Instrument)) {
	for _, in := range r.order {
		f(in)
	}
}

// sorted returns the instruments ordered by name (the export order).
func (r *Registry) sorted() []*Instrument {
	out := make([]*Instrument, len(r.order))
	copy(out, r.order)
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// DefaultReservoir is the distribution reservoir size when none is given.
const DefaultReservoir = 1024

// Distribution accumulates observations with count/sum/min/max plus a
// fixed-size reservoir (Vitter's algorithm R) from which percentiles are
// computed at export time. Replacement uses a deterministic xorshift64 stream
// seeded from the instrument name, so the same observation sequence always
// keeps the same reservoir.
type Distribution struct {
	count    uint64
	sum      float64
	min, max float64
	res      []float64
	cap      int
	rng      uint64
	seed     uint64
}

func newDistribution(name string, size int) *Distribution {
	if size <= 0 {
		size = DefaultReservoir
	}
	// FNV-1a over the name; xorshift64 must not start at 0.
	var h uint64 = 1469598103934665603
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	if h == 0 {
		h = 1
	}
	return &Distribution{cap: size, rng: h, seed: h, res: make([]float64, 0, size)}
}

func (d *Distribution) next() uint64 {
	x := d.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	d.rng = x
	return x
}

// Observe records one sample.
func (d *Distribution) Observe(v float64) {
	if d.count == 0 || v < d.min {
		d.min = v
	}
	if d.count == 0 || v > d.max {
		d.max = v
	}
	d.count++
	d.sum += v
	if len(d.res) < d.cap {
		d.res = append(d.res, v)
		return
	}
	if j := d.next() % d.count; j < uint64(d.cap) {
		d.res[j] = v
	}
}

// Count reports the number of observations.
func (d *Distribution) Count() uint64 { return d.count }

// Mean returns the arithmetic mean of all observations (0 when empty).
func (d *Distribution) Mean() float64 {
	if d.count == 0 {
		return 0
	}
	return d.sum / float64(d.count)
}

// Quantile returns the p-th percentile (0 < p <= 100) estimated from the
// reservoir, by nearest rank on a sorted copy.
func (d *Distribution) Quantile(p float64) float64 {
	if len(d.res) == 0 {
		return 0
	}
	sorted := make([]float64, len(d.res))
	copy(sorted, d.res)
	sort.Float64s(sorted)
	rank := int(p/100*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// Reset restores the distribution to its initial state, including the
// reservoir RNG, so post-warm-up measurement windows are reproducible.
func (d *Distribution) Reset() {
	d.count = 0
	d.sum = 0
	d.min = 0
	d.max = 0
	d.res = d.res[:0]
	d.rng = d.seed
}

// DistSummary is a distribution's export form.
type DistSummary struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// Summary computes the export form. Percentiles sort the reservoir once.
func (d *Distribution) Summary() DistSummary {
	s := DistSummary{Count: d.count, Mean: d.Mean(), Min: d.min, Max: d.max}
	if len(d.res) == 0 {
		return s
	}
	sorted := make([]float64, len(d.res))
	copy(sorted, d.res)
	sort.Float64s(sorted)
	at := func(p float64) float64 {
		rank := int(p/100*float64(len(sorted))+0.5) - 1
		if rank < 0 {
			rank = 0
		}
		if rank >= len(sorted) {
			rank = len(sorted) - 1
		}
		return sorted[rank]
	}
	s.P50, s.P95, s.P99 = at(50), at(95), at(99)
	return s
}

// round trims float noise for export stability: values that are integral
// stay integral, everything else keeps full precision (Go's shortest-repr
// float formatting is already deterministic).
func round(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}
