package stats

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	rtmetrics "runtime/metrics"
)

// ServeDebug starts an HTTP server on addr exposing Go's profiling and
// runtime observability endpoints for long simulation runs:
//
//	/debug/pprof/           profile index (heap, goroutine, ...)
//	/debug/pprof/profile    30 s CPU profile
//	/debug/metrics          runtime/metrics in a flat text form
//
// It returns the bound address (useful with ":0") once the listener is
// live; the server runs on a background goroutine for the process lifetime.
// The simulator itself is unaffected — this observes the Go runtime, not
// simulated state.
func ServeDebug(addr string) (string, error) {
	return ServeDebugWith(addr, nil)
}

// ServeDebugWith is ServeDebug plus live run telemetry: when progress is
// non-nil, a /progress endpoint serves its JSON snapshot (current simulated
// cycle, wall-clock cycles/sec, ETA, per-unit sweep progress). The feed is
// written with atomic counters from the run goroutine and read here from the
// HTTP goroutine, so polling it never perturbs (or waits on) the simulation.
func ServeDebugWith(addr string, progress *Progress) (string, error) {
	mux := http.NewServeMux()
	if progress != nil {
		mux.HandleFunc("/progress", progress.handler)
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		writeRuntimeMetrics(w)
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go http.Serve(ln, mux) //nolint:errcheck // best-effort debug endpoint
	return ln.Addr().String(), nil
}

// writeRuntimeMetrics dumps every runtime/metrics sample as "name value"
// lines (histograms report their bucket count only — use pprof for shape).
func writeRuntimeMetrics(w http.ResponseWriter) {
	descs := rtmetrics.All()
	samples := make([]rtmetrics.Sample, len(descs))
	for i, d := range descs {
		samples[i].Name = d.Name
	}
	rtmetrics.Read(samples)
	for _, s := range samples {
		switch s.Value.Kind() {
		case rtmetrics.KindUint64:
			fmt.Fprintf(w, "%s %d\n", s.Name, s.Value.Uint64())
		case rtmetrics.KindFloat64:
			fmt.Fprintf(w, "%s %g\n", s.Name, s.Value.Float64())
		case rtmetrics.KindFloat64Histogram:
			h := s.Value.Float64Histogram()
			var n uint64
			for _, c := range h.Counts {
				n += c
			}
			fmt.Fprintf(w, "%s histogram_count=%d\n", s.Name, n)
		}
	}
}
