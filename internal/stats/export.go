package stats

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"pivot/internal/metrics"
)

// DumpInstrument is one instrument's export form.
type DumpInstrument struct {
	Name  string       `json:"name"`
	Kind  string       `json:"kind"`
	Value float64      `json:"value"`
	Dist  *DistSummary `json:"dist,omitempty"`
}

// DumpSeries is the epoch time-series export form: one cycle stamp per
// sample and, per instrument, the parallel value column.
type DumpSeries struct {
	EpochCycles uint64               `json:"epochCycles"`
	Cycles      []uint64             `json:"cycles"`
	Values      map[string][]float64 `json:"values"`
}

// Dump is a registry snapshot plus (optionally) its sampled time series —
// the flat, diffable artifact two runs of the same seed reproduce
// byte-for-byte.
type Dump struct {
	Instruments []DumpInstrument `json:"instruments"`
	Series      *DumpSeries      `json:"series,omitempty"`
}

// Dump snapshots the registry, including sampler's series when non-nil.
// Instruments are sorted by name; encoding/json sorts the series map keys,
// so the JSON form is deterministic.
func (r *Registry) Dump(s *Sampler) Dump {
	d := Dump{Instruments: make([]DumpInstrument, 0, len(r.order))}
	for _, in := range r.sorted() {
		di := DumpInstrument{Name: in.name, Kind: in.kind.String(), Value: round(in.Value())}
		if in.dist != nil {
			sum := in.dist.Summary()
			di.Dist = &sum
		}
		d.Instruments = append(d.Instruments, di)
	}
	if s != nil && s.Len() > 0 {
		ser := &DumpSeries{
			EpochCycles: s.epoch,
			Values:      make(map[string][]float64, len(r.order)),
		}
		samples := s.Samples()
		for _, smp := range samples {
			ser.Cycles = append(ser.Cycles, smp.Cycle)
		}
		for i, in := range r.order {
			col := make([]float64, len(samples))
			for j, smp := range samples {
				col[j] = smp.Values[i]
			}
			ser.Values[in.name] = col
		}
		d.Series = ser
	}
	return d
}

// WriteJSON writes the dump as indented JSON.
func (d Dump) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// WriteCSV writes the dump as two CSV blocks: a name,kind,value flat table,
// then (when a series was sampled) a cycle,<instrument...> wide table.
func (d Dump) WriteCSV(w io.Writer) error {
	var b strings.Builder
	b.WriteString("name,kind,value\n")
	for _, in := range d.Instruments {
		fmt.Fprintf(&b, "%s,%s,%s\n", csvField(in.Name), in.Kind, formatFloat(in.Value))
	}
	if d.Series != nil {
		names := make([]string, 0, len(d.Series.Values))
		for name := range d.Series.Values {
			names = append(names, name)
		}
		// Deterministic column order.
		sort.Strings(names)
		b.WriteString("\ncycle")
		for _, n := range names {
			b.WriteByte(',')
			b.WriteString(csvField(n))
		}
		b.WriteByte('\n')
		for i, cyc := range d.Series.Cycles {
			fmt.Fprintf(&b, "%d", cyc)
			for _, n := range names {
				b.WriteByte(',')
				b.WriteString(formatFloat(d.Series.Values[n][i]))
			}
			b.WriteByte('\n')
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Table renders the flat instrument values as an aligned experiment table.
func (d Dump) Table(title string) *metrics.Table {
	t := &metrics.Table{Title: title, Headers: []string{"instrument", "kind", "value"}}
	for _, in := range d.Instruments {
		val := formatFloat(in.Value)
		if in.Dist != nil {
			val = fmt.Sprintf("n=%d mean=%.1f p95=%.1f", in.Dist.Count, in.Dist.Mean, in.Dist.P95)
		}
		t.AddRow(in.Name, in.Kind, val)
	}
	return t
}

func formatFloat(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func csvField(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}
