package stats

import (
	"encoding/json"
	"io"
)

// CyclesPerTick converts simulated cycles to trace-event timestamp ticks.
// The Chrome trace-event format counts microseconds; we map 1 "microsecond"
// to 1000 cycles so a millisecond on the Perfetto ruler reads as one million
// cycles — close to one wall millisecond at the modelled 2.4 GHz clock.
const CyclesPerTick = 1000.0

// TraceEvent is one Chrome trace-event record (the JSON array format that
// chrome://tracing and ui.perfetto.dev load directly).
type TraceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// Timeline accumulates trace events for one or more simulation runs
// (distinguished by pid) and serialises them as a trace-event JSON object.
type Timeline struct {
	events []TraceEvent
}

// NewTimeline returns an empty timeline.
func NewTimeline() *Timeline { return &Timeline{} }

// Len reports the number of accumulated events.
func (t *Timeline) Len() int { return len(t.events) }

// ProcessName labels a pid's track group (one simulation run).
func (t *Timeline) ProcessName(pid int, name string) {
	t.events = append(t.events, TraceEvent{
		Name: "process_name", Ph: "M", Pid: pid,
		Args: map[string]any{"name": name},
	})
}

// ThreadName labels one tid within a pid (e.g. "core 0 requests").
func (t *Timeline) ThreadName(pid, tid int, name string) {
	t.events = append(t.events, TraceEvent{
		Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
		Args: map[string]any{"name": name},
	})
}

// Complete adds a duration ("X") event spanning [startCycle,
// startCycle+durCycles) on the given track.
func (t *Timeline) Complete(pid, tid int, name, cat string, startCycle, durCycles uint64, args map[string]any) {
	dur := float64(durCycles) / CyclesPerTick
	if dur <= 0 {
		dur = 1 / CyclesPerTick // zero-width events vanish in viewers
	}
	t.events = append(t.events, TraceEvent{
		Name: name, Cat: cat, Ph: "X",
		Ts: float64(startCycle) / CyclesPerTick, Dur: dur,
		Pid: pid, Tid: tid, Args: args,
	})
}

// Counter adds a counter ("C") event: the named track charts its args values
// over time (queue depths, occupancies, usage fractions).
func (t *Timeline) Counter(pid int, name string, cycle uint64, values map[string]float64) {
	args := make(map[string]any, len(values))
	for k, v := range values {
		args[k] = round(v)
	}
	t.events = append(t.events, TraceEvent{
		Name: name, Ph: "C",
		Ts:  float64(cycle) / CyclesPerTick,
		Pid: pid, Args: args,
	})
}

// Instant adds an instant ("i") event marking a point in time (a starvation
// promotion, an RRBP refresh).
func (t *Timeline) Instant(pid, tid int, name, cat string, cycle uint64) {
	t.events = append(t.events, TraceEvent{
		Name: name, Cat: cat, Ph: "i",
		Ts:  float64(cycle) / CyclesPerTick,
		Pid: pid, Tid: tid,
		Args: map[string]any{"s": "t"},
	})
}

// AddSeries charts a sampled series as counter events on pid: one counter
// track per instrument name, one event per sample. Only gauge and rate
// instruments make useful counter tracks; the caller filters.
func (t *Timeline) AddSeries(pid int, reg *Registry, s *Sampler, keep func(in *Instrument) bool) {
	if s == nil || s.Len() == 0 {
		return
	}
	samples := s.Samples()
	for i, in := range reg.order {
		if keep != nil && !keep(in) {
			continue
		}
		for _, smp := range samples {
			t.Counter(pid, in.name, smp.Cycle, map[string]float64{"value": smp.Values[i]})
		}
	}
}

// traceFile is the trace-event JSON object form.
type traceFile struct {
	TraceEvents     []TraceEvent   `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	Metadata        map[string]any `json:"metadata,omitempty"`
}

// WriteJSON serialises the timeline as a Chrome trace-event JSON object that
// chrome://tracing and ui.perfetto.dev open directly.
func (t *Timeline) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(traceFile{
		TraceEvents:     t.events,
		DisplayTimeUnit: "ms",
		Metadata: map[string]any{
			"cycles-per-microsecond-tick": CyclesPerTick,
			"source":                      "pivot simulator",
		},
	})
}
