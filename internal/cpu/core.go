package cpu

import (
	"fmt"

	"pivot/internal/sim"
	"pivot/internal/stats"
)

// Config sets a core's pipeline geometry (Table II / Table III in the paper).
type Config struct {
	ROBSize     int
	FetchWidth  int // dispatch width into the ROB
	IssueWidth  int
	CommitWidth int
	LQSize      int
	SQSize      int

	// LongStall is the ROB-stall-cycle threshold above which a stall counts
	// as "long" for the RRBP (exceeding the LLC access time, §IV-C).
	LongStall sim.Cycle
}

// Validate reports a descriptive error for impossible pipeline geometries.
func (c Config) Validate() error {
	switch {
	case c.ROBSize <= 0:
		return fmt.Errorf("cpu: ROBSize %d must be positive", c.ROBSize)
	case c.FetchWidth <= 0 || c.IssueWidth <= 0 || c.CommitWidth <= 0:
		return fmt.Errorf("cpu: fetch/issue/commit widths must be positive (got %d/%d/%d)",
			c.FetchWidth, c.IssueWidth, c.CommitWidth)
	case c.LQSize <= 0 || c.SQSize <= 0:
		return fmt.Errorf("cpu: LQSize/SQSize must be positive (got %d/%d)", c.LQSize, c.SQSize)
	}
	return nil
}

// Hooks are the observation and decision points the machine wires into a
// core. Nil hooks are skipped.
type Hooks struct {
	// IsCritical decides, when a load enters the load queue, whether its
	// memory request carries the critical bit (PIVOT reads the RRBP here;
	// FullPath returns true for every LC load; CBP consults its own table).
	IsCritical func(pc uint64) bool

	// OnLoadRetire fires when a load commits, with the ROB-head stall cycles
	// attributed to it and whether it missed the LLC. The offline profiler
	// and the RRBP updater both observe this.
	OnLoadRetire func(pc uint64, stall sim.Cycle, llcMiss bool)

	// OnReqEnd fires when an op flagged FlagReqEnd commits; the load
	// generator computes request latency from it.
	OnReqEnd func(reqID uint64, now sim.Cycle)

	// SkipCritical compensates the observable side effects (lookup and
	// flagged counters in the criticality predictor) of n elided IsCritical
	// probes for the load at pc. It must be set whenever IsCritical has such
	// side effects and the machine wants skip-ahead over stuck retries; when
	// IsCritical is set but SkipCritical is nil the core conservatively
	// refuses to report a refused load retry as idle.
	SkipCritical func(pc uint64, n uint64)
}

// IdleStream is the optional quiescence interface an instruction Stream may
// implement. NextAvailable(now) returns (next, true) when Next would return
// false without observable side effects every cycle until next at the
// earliest; (_, false) means an op is (or may be) available now.
type IdleStream interface {
	NextAvailable(now sim.Cycle) (next sim.Cycle, idle bool)
}

// RetryPort is the optional quiescence interface a MemPort may implement so
// a core stuck re-trying a refused memory op can be skipped. RetryReady
// reports whether re-issuing the refused op at addr could make progress this
// cycle (i.e. Load/Store would not refuse again); SkipRetries applies the
// side effects of n elided refused probes (the L1 miss-probe statistics a
// dense retry would have bumped).
type RetryPort interface {
	RetryReady(kind OpKind, addr uint64) bool
	SkipRetries(kind OpKind, addr uint64, n uint64)
}

// LoadRequest is what the core hands to the memory port for one load.
type LoadRequest struct {
	Addr     uint64
	PC       uint64
	Critical bool
	// Seq identifies the load's ROB entry. The port completes the load by
	// calling Core.CompleteLoad(Seq, ...) exactly once — a plain descriptor
	// rather than a callback, so in-flight loads are checkpointable.
	Seq uint64
}

// MemPort is the core's window into the memory hierarchy (its private L1D
// and everything behind it). Implementations return false to signal
// "structural hazard, retry next cycle".
type MemPort interface {
	Load(r LoadRequest, now sim.Cycle) bool
	// Store is fire-and-forget: stores retire through the write buffer
	// (§III-B: store instructions rarely stall the ROB) but still consume
	// memory bandwidth downstream.
	Store(addr, pc uint64, now sim.Cycle) bool
}

type entryState uint8

const (
	stWaiting entryState = iota // deps outstanding
	stReady                     // ready to issue
	stIssued                    // executing / memory access in flight
	stDone                      // result available, waiting to commit
)

type robEntry struct {
	op      MicroOp
	seq     uint64
	state   entryState
	doneAt  sim.Cycle // for ALU ops: completion time
	pending int       // outstanding source deps
	waiters []uint64  // seqs woken when this entry completes
	stall   sim.Cycle // ROB-head stall cycles attributed to this entry
	llcMiss bool
}

// Stats aggregates a core's activity.
type Stats struct {
	Committed     uint64
	Loads         uint64
	Stores        uint64
	StallCycles   uint64 // cycles commit made no progress with a non-empty ROB
	LoadStallCyc  uint64 // subset attributed to a load at the ROB head
	IdleCycles    uint64 // cycles with an empty ROB and no op available
	DispatchStall uint64 // cycles dispatch blocked on a full ROB/LQ/SQ
}

// Core is one out-of-order CPU.
type Core struct {
	ID   int
	cfg  Config
	mem  MemPort
	src  Stream
	hook Hooks

	rob     []robEntry // ring buffer
	head    int
	count   int
	nextSeq uint64
	headSeq uint64 // seq of the entry at rob[head]

	lastWriter [NumRegs]uint64 // seq producing each register; 0 = none

	// readyQ/retryQ are FIFOs popped via a head index rather than a [1:]
	// reslice: reslicing walks the backing array's capacity away, forcing a
	// reallocation every ~cap pushes under steady issue traffic. The head
	// indices are not serialised — snapshots store the live readyQ[readyH:]
	// suffix and restore compacted.
	readyQ   []uint64 // seqs ready to issue (FIFO)
	readyH   int
	retryQ   []uint64 // mem ops refused by the port, retried first
	retryH   int
	lqUsed   int
	sqUsed   int
	fetchBuf MicroOp
	fetched  bool

	// aluWheel is a 256-slot timing wheel of ALU completions: issuing an ALU
	// op with latency L (≤ 255) appends its seq to the slot for now+L, and
	// each Tick drains only the current slot — O(completions) rather than
	// O(ROB) per cycle.
	aluWheel [256][]uint64
	// aluPending counts seqs currently parked in aluWheel, so quiescence
	// detection never scans the wheel. Derived state: recomputed on restore.
	aluPending int

	// Cached optional capabilities of mem/src, resolved once.
	retry   RetryPort
	idleSrc IdleStream

	// Memoized NextWork verdict. Valid until the core ticks or an external
	// event (load completion, port-state change) invalidates it via WakeIdle;
	// this makes polling a parked core O(1) instead of re-probing the port.
	idleValid bool
	idleNext  sim.Cycle
	// shape caches, alongside a valid idle verdict, exactly which counters a
	// quiescent cycle accrues, so the per-cycle SkipCycles fast path applies
	// precomputed increments instead of re-deriving them.
	shape skipShape

	Stats Stats
}

// New builds a core reading from src and accessing memory through port.
func New(id int, cfg Config, src Stream, port MemPort, hook Hooks) *Core {
	if cfg.ROBSize <= 0 {
		panic("cpu: ROBSize must be positive")
	}
	c := &Core{
		ID:   id,
		cfg:  cfg,
		mem:  port,
		src:  src,
		hook: hook,
		rob:  make([]robEntry, cfg.ROBSize),
	}
	c.retry, _ = port.(RetryPort)
	c.idleSrc, _ = src.(IdleStream)
	return c
}

// Config returns the core configuration.
func (c *Core) Config() Config { return c.cfg }

// SetStream replaces the instruction source (used when restarting phases).
func (c *Core) SetStream(s Stream) {
	c.src = s
	c.idleSrc, _ = s.(IdleStream)
	c.idleValid = false
}

func (c *Core) slotOf(seq uint64) *robEntry {
	if seq < c.headSeq || seq >= c.headSeq+uint64(c.count) {
		return nil
	}
	idx := (c.head + int(seq-c.headSeq)) % c.cfg.ROBSize
	return &c.rob[idx]
}

// depReady reports whether the producer of seq has completed (or retired).
func (c *Core) depReady(seq uint64) bool {
	if seq == 0 {
		return true
	}
	e := c.slotOf(seq)
	if e == nil {
		return true // already retired
	}
	return e.state == stDone
}

// Tick advances the core one cycle: commit, issue, dispatch.
func (c *Core) Tick(now sim.Cycle) {
	c.idleValid = false
	c.commit(now)
	c.issue(now)
	c.dispatch(now)
}

// WakeIdle invalidates the memoized quiescence verdict. The machine calls it
// whenever it mutates state the verdict depends on from outside the core's
// own Tick (a fill into the private cache hierarchy, an egress-queue drain).
func (c *Core) WakeIdle() { c.idleValid = false }

// NextWork implements sim.IdleReporter: the core is quiescent exactly when a
// dense Tick would change nothing but the stall/idle counters SkipCycles
// compensates — no commit, no issue, no dispatch, no retry that could
// succeed, and no instruction arriving from the stream.
func (c *Core) NextWork(now sim.Cycle) (sim.Cycle, bool) {
	if c.idleValid && c.idleNext > now {
		return c.idleNext, true
	}
	next, idle := c.nextWork(now)
	c.idleValid = idle
	c.idleNext = next
	return next, idle
}

// skipShape is the precomputed per-quiescent-cycle counter delta.
type skipShape struct {
	headEntry *robEntry // non-nil: head stalls (entry pointer is stable while idle)
	headLoad  bool
	hasRetry  bool
	skipCrit  bool
	retryKind OpKind
	retryPC   uint64
	retryAddr uint64
	dispatch  uint8 // 0 = none, 1 = DispatchStall, 2 = IdleCycles
}

func (c *Core) nextWork(now sim.Cycle) (sim.Cycle, bool) {
	// ALU completions pending or ops ready to issue: work this cycle.
	if c.aluPending > 0 || len(c.readyQ) > c.readyH {
		return 0, false
	}
	sh := skipShape{}
	// Commit would retire the head.
	if c.count > 0 {
		e := &c.rob[c.head]
		if e.state == stDone {
			return 0, false
		}
		sh.headEntry = e
		sh.headLoad = e.op.Kind == OpLoad
	}
	// A refused memory op is retried every cycle; that retry is elidable
	// only when the port can prove it would be refused again and its probe
	// side effects are fully compensable.
	if len(c.retryQ) > c.retryH {
		if c.retry == nil {
			return 0, false
		}
		e := c.slotOf(c.retryQ[c.retryH])
		if e == nil {
			return 0, false // stale seq: the retry queue itself would shrink
		}
		if e.op.Kind == OpLoad && c.hook.IsCritical != nil && c.hook.SkipCritical == nil {
			return 0, false // cannot compensate the predictor probe
		}
		if c.retry.RetryReady(e.op.Kind, e.op.Addr) {
			return 0, false
		}
		sh.hasRetry = true
		sh.skipCrit = e.op.Kind == OpLoad && c.hook.IsCritical != nil
		sh.retryKind = e.op.Kind
		sh.retryPC = e.op.PC
		sh.retryAddr = e.op.Addr
	}
	// Dispatch progress: possible only when the ROB has room.
	next := NeverWork
	if c.count >= c.cfg.ROBSize {
		sh.dispatch = 1
	} else if c.fetched {
		op := &c.fetchBuf
		lqBlocked := op.Kind == OpLoad && c.lqUsed >= c.cfg.LQSize
		sqBlocked := op.Kind == OpStore && c.sqUsed >= c.cfg.SQSize
		if !lqBlocked && !sqBlocked {
			return 0, false
		}
		sh.dispatch = 1
	} else {
		if c.idleSrc == nil {
			return 0, false
		}
		n, idle := c.idleSrc.NextAvailable(now)
		if !idle {
			return 0, false
		}
		next = n
		if c.count == 0 {
			sh.dispatch = 2
		}
	}
	c.shape = sh
	return next, true
}

// NeverWork mirrors sim.NeverWork without importing it twice at call sites.
const NeverWork = ^sim.Cycle(0)

// SkipCycles implements sim.Skipper: it applies exactly the counter updates
// that n := to-from consecutive quiescent Ticks would have applied — the
// commit-stall attribution, the refused-retry probe statistics, and the
// dispatch-stall/idle accounting — in the same at-most-once-per-cycle
// pattern as the dense loop. The engine only calls it after an idle NextWork
// verdict, so the shape cached by that verdict (and still valid, or
// idleValid would have been dropped) describes this instant exactly.
func (c *Core) SkipCycles(from, to sim.Cycle) {
	n := uint64(to - from)
	if n == 0 {
		return
	}
	sh := &c.shape
	if sh.headEntry != nil {
		// commit: committed == 0 every skipped cycle (the head is not done).
		c.Stats.StallCycles += n
		sh.headEntry.stall += sim.Cycle(n)
		if sh.headLoad {
			c.Stats.LoadStallCyc += n
		}
	}
	if sh.hasRetry {
		// issue: one refused retry probe of the head op per skipped cycle.
		if sh.skipCrit {
			c.hook.SkipCritical(sh.retryPC, n)
		}
		c.retry.SkipRetries(sh.retryKind, sh.retryAddr, n)
	}
	// dispatch: blocked or idle, attributed once per cycle.
	switch sh.dispatch {
	case 1:
		c.Stats.DispatchStall += n
	case 2:
		c.Stats.IdleCycles += n
	}
}

func (c *Core) commit(now sim.Cycle) {
	if c.count == 0 {
		return
	}
	committed := 0
	for committed < c.cfg.CommitWidth && c.count > 0 {
		e := &c.rob[c.head]
		if e.state != stDone {
			break
		}
		// Retire.
		if e.op.Kind == OpLoad {
			c.Stats.Loads++
			if c.hook.OnLoadRetire != nil {
				c.hook.OnLoadRetire(e.op.PC, e.stall, e.llcMiss)
			}
			c.lqUsed--
		} else if e.op.Kind == OpStore {
			c.Stats.Stores++
			c.sqUsed--
		}
		if e.op.Flags&FlagReqEnd != 0 && c.hook.OnReqEnd != nil {
			c.hook.OnReqEnd(e.op.ReqID, now)
		}
		if c.lastWriter[e.op.Dest] == e.seq {
			c.lastWriter[e.op.Dest] = 0
		}
		e.waiters = nil
		c.head = (c.head + 1) % c.cfg.ROBSize
		c.headSeq++
		c.count--
		committed++
		c.Stats.Committed++
	}
	if committed == 0 && c.count > 0 {
		// ROB-head stall: attribute to the head instruction.
		c.Stats.StallCycles++
		e := &c.rob[c.head]
		e.stall++
		if e.op.Kind == OpLoad {
			c.Stats.LoadStallCyc++
		}
	}
}

// complete marks seq done and wakes its dependents.
func (c *Core) complete(seq uint64, now sim.Cycle) {
	e := c.slotOf(seq)
	if e == nil || e.state == stDone {
		return
	}
	e.state = stDone
	for _, w := range e.waiters {
		we := c.slotOf(w)
		if we == nil {
			continue
		}
		we.pending--
		if we.pending == 0 && we.state == stWaiting {
			we.state = stReady
			c.readyQ = append(c.readyQ, w)
		}
	}
	e.waiters = e.waiters[:0]
	_ = now
}

func (c *Core) issue(now sim.Cycle) {
	issued := 0

	// Retry memory ops the port refused before consuming new ready ops.
	for issued < c.cfg.IssueWidth && len(c.retryQ) > c.retryH {
		seq := c.retryQ[c.retryH]
		if !c.tryIssueMem(seq, now) {
			break // port still busy; preserve order
		}
		c.retryH++
		issued++
	}
	if c.retryH == len(c.retryQ) && c.retryH > 0 {
		c.retryQ, c.retryH = c.retryQ[:0], 0
	}

	for issued < c.cfg.IssueWidth && len(c.readyQ) > c.readyH {
		seq := c.readyQ[c.readyH]
		c.readyH++
		e := c.slotOf(seq)
		if e == nil || e.state != stReady {
			continue
		}
		switch e.op.Kind {
		case OpALU:
			e.state = stIssued
			lat := sim.Cycle(e.op.Lat)
			if lat == 0 {
				lat = 1
			}
			e.doneAt = now + lat
			slot := int(e.doneAt) & 255
			c.aluWheel[slot] = append(c.aluWheel[slot], seq)
			c.aluPending++
			issued++
		case OpLoad, OpStore:
			e.state = stIssued
			if !c.tryIssueMem(seq, now) {
				c.retryQ = append(c.retryQ, seq)
			}
			issued++
		}
	}
	if c.readyH == len(c.readyQ) && c.readyH > 0 {
		c.readyQ, c.readyH = c.readyQ[:0], 0
	}

	c.drainALUWheel(now)
}

// drainALUWheel completes every ALU op scheduled for this cycle.
func (c *Core) drainALUWheel(now sim.Cycle) {
	slot := int(now) & 255
	pend := c.aluWheel[slot]
	if len(pend) == 0 {
		return
	}
	c.aluWheel[slot] = pend[:0]
	c.aluPending -= len(pend)
	for _, seq := range pend {
		e := c.slotOf(seq)
		if e != nil && e.state == stIssued && e.op.Kind == OpALU && e.doneAt <= now {
			c.complete(seq, now)
		}
	}
}

func (c *Core) tryIssueMem(seq uint64, now sim.Cycle) bool {
	e := c.slotOf(seq)
	if e == nil {
		return true
	}
	switch e.op.Kind {
	case OpLoad:
		crit := false
		if c.hook.IsCritical != nil {
			crit = c.hook.IsCritical(e.op.PC)
		}
		ok := c.mem.Load(LoadRequest{
			Addr:     e.op.Addr,
			PC:       e.op.PC,
			Critical: crit,
			Seq:      seq,
		}, now)
		return ok
	case OpStore:
		ok := c.mem.Store(e.op.Addr, e.op.PC, now)
		if ok {
			// Stores complete through the write buffer immediately.
			c.complete(seq, now)
		}
		return ok
	}
	return true
}

// CompleteLoad finishes the load identified by its LoadRequest.Seq: records
// whether it missed the LLC and wakes its dependents. Completing a seq that
// already retired (or was never issued) is a no-op, matching the old
// callback's slotOf guard.
func (c *Core) CompleteLoad(seq uint64, llcMiss bool, now sim.Cycle) {
	c.idleValid = false
	if e := c.slotOf(seq); e != nil {
		e.llcMiss = llcMiss
	}
	c.complete(seq, now)
}

func (c *Core) dispatch(now sim.Cycle) {
	for n := 0; n < c.cfg.FetchWidth; n++ {
		if c.count >= c.cfg.ROBSize {
			c.Stats.DispatchStall++
			return
		}
		if !c.fetched {
			if !c.src.Next(&c.fetchBuf) {
				if c.count == 0 {
					c.Stats.IdleCycles++
				}
				return
			}
			c.fetched = true
		}
		op := c.fetchBuf
		if op.Kind == OpLoad && c.lqUsed >= c.cfg.LQSize {
			c.Stats.DispatchStall++
			return
		}
		if op.Kind == OpStore && c.sqUsed >= c.cfg.SQSize {
			c.Stats.DispatchStall++
			return
		}
		c.fetched = false

		c.nextSeq++
		seq := c.nextSeq
		idx := (c.head + c.count) % c.cfg.ROBSize
		if c.count == 0 {
			c.headSeq = seq
			c.head = idx
		}
		e := &c.rob[idx]
		*e = robEntry{op: op, seq: seq, state: stWaiting}

		// Resolve source dependences.
		deps := 0
		for _, r := range [2]RegID{op.Src1, op.Src2} {
			if r == 0 {
				continue
			}
			p := c.lastWriter[r]
			if p == 0 || c.depReady(p) {
				continue
			}
			pe := c.slotOf(p)
			pe.waiters = append(pe.waiters, seq)
			deps++
		}
		e.pending = deps
		if op.Dest != 0 {
			c.lastWriter[op.Dest] = seq
		}
		if op.Kind == OpLoad {
			c.lqUsed++
		} else if op.Kind == OpStore {
			c.sqUsed++
		}
		c.count++
		if deps == 0 {
			e.state = stReady
			c.readyQ = append(c.readyQ, seq)
		}
	}
}

// RegisterStats registers the core's instruments under prefix (e.g. "cpu0"):
// the pipeline counters, a commit-rate series, and the ROB-occupancy and
// ROB-head stall gauges behind the paper's stall-attribution claims.
func (c *Core) RegisterStats(reg *stats.Registry, prefix string) {
	st := &c.Stats
	reg.Counter(prefix+".committed", func() uint64 { return st.Committed })
	reg.Counter(prefix+".loads", func() uint64 { return st.Loads })
	reg.Counter(prefix+".stores", func() uint64 { return st.Stores })
	reg.Counter(prefix+".stall_cycles", func() uint64 { return st.StallCycles })
	reg.Counter(prefix+".load_stall_cycles", func() uint64 { return st.LoadStallCyc })
	reg.Counter(prefix+".idle_cycles", func() uint64 { return st.IdleCycles })
	reg.Counter(prefix+".dispatch_stalls", func() uint64 { return st.DispatchStall })
	reg.Rate(prefix+".commit_rate", func() uint64 { return st.Committed })
	reg.Rate(prefix+".stall_rate", func() uint64 { return st.StallCycles })
	reg.Gauge(prefix+".rob_occupancy", func() float64 { return float64(c.count) })
	reg.Gauge(prefix+".lq_used", func() float64 { return float64(c.lqUsed) })
	reg.Gauge(prefix+".sq_used", func() float64 { return float64(c.sqUsed) })
}

// ROBOccupancy reports the number of in-flight instructions.
func (c *Core) ROBOccupancy() int { return c.count }

// ROBHead describes the instruction blocking the head of the reorder buffer
// for diagnostic dumps (which static instruction is the machine stuck on?).
type ROBHead struct {
	PC    uint64
	Kind  OpKind
	State string // "waiting", "ready", "issued", "done"
	// StallCycles is how many commit-blocked cycles are attributed to this
	// entry so far.
	StallCycles sim.Cycle
}

// ROBHeadInfo returns the ROB-head instruction, or ok=false when the ROB is
// empty.
func (c *Core) ROBHeadInfo() (h ROBHead, ok bool) {
	if c.count == 0 {
		return ROBHead{}, false
	}
	e := &c.rob[c.head]
	h = ROBHead{PC: e.op.PC, Kind: e.op.Kind, StallCycles: e.stall}
	switch e.state {
	case stWaiting:
		h.State = "waiting"
	case stReady:
		h.State = "ready"
	case stIssued:
		h.State = "issued"
	case stDone:
		h.State = "done"
	}
	return h, true
}

// LQUsed and SQUsed report load/store-queue occupancy.
func (c *Core) LQUsed() int { return c.lqUsed }

// SQUsed reports store-queue occupancy.
func (c *Core) SQUsed() int { return c.sqUsed }

// IPC returns committed instructions per cycle over elapsed cycles.
func (c *Core) IPC(elapsed sim.Cycle) float64 {
	if elapsed == 0 {
		return 0
	}
	return float64(c.Stats.Committed) / float64(elapsed)
}

// ResetStats zeroes the counters (between warm-up and measurement).
func (c *Core) ResetStats() { c.Stats = Stats{} }
