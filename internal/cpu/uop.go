// Package cpu implements the out-of-order core model: a reorder buffer with
// in-order commit, register dependence tracking with wakeup lists, load/store
// queues, and — the signal PIVOT is built on — per-static-load attribution of
// ROB-head stall cycles.
//
// The model deliberately omits branch prediction and speculation: the
// workload generators emit already-resolved instruction streams, so there is
// nothing to squash. Every experiment in the paper measures memory-system
// behaviour, which is unaffected by this simplification (documented in
// DESIGN.md).
package cpu

// OpKind classifies a micro-op.
type OpKind uint8

// Micro-op kinds.
const (
	OpALU OpKind = iota
	OpLoad
	OpStore
)

// String returns a short human-readable op-kind name.
func (k OpKind) String() string {
	switch k {
	case OpALU:
		return "ALU"
	case OpLoad:
		return "LOAD"
	case OpStore:
		return "STORE"
	default:
		return "?"
	}
}

// Flags on a micro-op.
const (
	// FlagReqEnd marks the last op of a latency-critical request; its commit
	// timestamp determines the request's service latency.
	FlagReqEnd uint8 = 1 << iota
	// FlagPotentialCritical is the extra instruction bit PIVOT's offline
	// profiler sets via binary rewriting (§IV-B): only loads carrying it are
	// measured by the online RRBP mechanism.
	FlagPotentialCritical
)

// RegID names one of the core's architectural registers. Register 0 reads as
// always-ready and is never a real destination (like the zero register).
type RegID uint8

// NumRegs is the architectural register count visible to workload generators.
const NumRegs = 32

// MicroOp is one instruction as produced by a workload generator.
type MicroOp struct {
	PC    uint64
	Kind  OpKind
	Dest  RegID
	Src1  RegID
	Src2  RegID
	Addr  uint64 // effective address for loads/stores
	Lat   uint8  // execution latency for ALU ops (cycles)
	Flags uint8
	ReqID uint64 // request identifier when FlagReqEnd is set
}

// Stream supplies micro-ops to a core. Next fills op and returns true, or
// returns false when no instruction is available this cycle (an LC core
// idling between requests). A stream may resume returning true later.
type Stream interface {
	Next(op *MicroOp) bool
}
