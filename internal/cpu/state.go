package cpu

import "pivot/internal/sim"

// ROBEntryState mirrors one reorder-buffer slot.
type ROBEntryState struct {
	Op      MicroOp
	Seq     uint64
	State   uint8
	DoneAt  sim.Cycle
	Pending int
	Waiters []uint64
	Stall   sim.Cycle
	LLCMiss bool
}

// CoreState is the serialisable form of a Core's pipeline: the ROB ring
// serialised in place (slot positions preserved, so seq→slot arithmetic and
// the ALU timing wheel stay valid), the rename map, the issue queues, and the
// fetch buffer. In-flight memory requests are NOT here — they live in the
// memory system's own state and complete via CompleteLoad(seq).
type CoreState struct {
	ROB        []ROBEntryState
	Head       int
	Count      int
	NextSeq    uint64
	HeadSeq    uint64
	LastWriter [NumRegs]uint64
	ReadyQ     []uint64
	RetryQ     []uint64
	LQUsed     int
	SQUsed     int
	FetchBuf   MicroOp
	Fetched    bool
	ALUWheel   [256][]uint64
	Stats      Stats
}

// SnapshotState captures the core's complete mutable state.
func (c *Core) SnapshotState() CoreState {
	s := CoreState{
		ROB:        make([]ROBEntryState, len(c.rob)),
		Head:       c.head,
		Count:      c.count,
		NextSeq:    c.nextSeq,
		HeadSeq:    c.headSeq,
		LastWriter: c.lastWriter,
		ReadyQ:     append([]uint64(nil), c.readyQ[c.readyH:]...),
		RetryQ:     append([]uint64(nil), c.retryQ[c.retryH:]...),
		LQUsed:     c.lqUsed,
		SQUsed:     c.sqUsed,
		FetchBuf:   c.fetchBuf,
		Fetched:    c.fetched,
		Stats:      c.Stats,
	}
	for i, e := range c.rob {
		s.ROB[i] = ROBEntryState{
			Op: e.op, Seq: e.seq, State: uint8(e.state), DoneAt: e.doneAt,
			Pending: e.pending, Waiters: append([]uint64(nil), e.waiters...),
			Stall: e.stall, LLCMiss: e.llcMiss,
		}
	}
	for slot, pend := range c.aluWheel {
		if len(pend) > 0 {
			s.ALUWheel[slot] = append([]uint64(nil), pend...)
		}
	}
	return s
}

// RestoreState overwrites the core's mutable state from a snapshot taken on
// an identically configured core (same ROBSize).
func (c *Core) RestoreState(s CoreState) {
	for i := range c.rob {
		var e ROBEntryState
		if i < len(s.ROB) {
			e = s.ROB[i]
		}
		c.rob[i] = robEntry{
			op: e.Op, seq: e.Seq, state: entryState(e.State), doneAt: e.DoneAt,
			pending: e.Pending, waiters: append([]uint64(nil), e.Waiters...),
			stall: e.Stall, llcMiss: e.LLCMiss,
		}
	}
	c.head = s.Head
	c.count = s.Count
	c.nextSeq = s.NextSeq
	c.headSeq = s.HeadSeq
	c.lastWriter = s.LastWriter
	c.readyQ, c.readyH = append(c.readyQ[:0], s.ReadyQ...), 0
	c.retryQ, c.retryH = append(c.retryQ[:0], s.RetryQ...), 0
	c.lqUsed = s.LQUsed
	c.sqUsed = s.SQUsed
	c.fetchBuf = s.FetchBuf
	c.fetched = s.Fetched
	c.aluPending = 0
	for slot := range c.aluWheel {
		c.aluWheel[slot] = append(c.aluWheel[slot][:0], s.ALUWheel[slot]...)
		c.aluPending += len(c.aluWheel[slot])
	}
	c.Stats = s.Stats
	c.idleValid = false // derived; never serialised
}
