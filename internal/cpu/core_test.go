package cpu

import (
	"testing"

	"pivot/internal/sim"
)

// sliceStream feeds a fixed op sequence, then reports no ops available.
type sliceStream struct {
	ops []MicroOp
	pos int
}

func (s *sliceStream) Next(op *MicroOp) bool {
	if s.pos >= len(s.ops) {
		return false
	}
	*op = s.ops[s.pos]
	s.pos++
	return true
}

// fakePort completes loads after a fixed latency, driven by a tick callback.
type fakePort struct {
	core     *Core // completion target, set by runCore
	latency  sim.Cycle
	pending  []fakePending
	loads    int
	stores   int
	refuseN  int // refuse the first N loads (structural hazard testing)
	inFlight int
	maxInFly int
}

type fakePending struct {
	due sim.Cycle
	seq uint64
}

func (p *fakePort) Load(r LoadRequest, now sim.Cycle) bool {
	if p.refuseN > 0 {
		p.refuseN--
		return false
	}
	p.loads++
	p.inFlight++
	if p.inFlight > p.maxInFly {
		p.maxInFly = p.inFlight
	}
	p.pending = append(p.pending, fakePending{due: now + p.latency, seq: r.Seq})
	return true
}

func (p *fakePort) Store(addr, pc uint64, now sim.Cycle) bool {
	p.stores++
	return true
}

func (p *fakePort) tick(now sim.Cycle) {
	rest := p.pending[:0]
	for _, e := range p.pending {
		if e.due <= now {
			p.inFlight--
			p.core.CompleteLoad(e.seq, false, now)
		} else {
			rest = append(rest, e)
		}
	}
	p.pending = rest
}

func testCfg() Config {
	return Config{ROBSize: 16, FetchWidth: 2, IssueWidth: 2, CommitWidth: 2,
		LQSize: 4, SQSize: 4, LongStall: 10}
}

func runCore(c *Core, p *fakePort, cycles sim.Cycle) {
	p.core = c
	for now := sim.Cycle(0); now < cycles; now++ {
		p.tick(now)
		c.Tick(now)
	}
}

func TestALUChainCommits(t *testing.T) {
	ops := []MicroOp{
		{PC: 1, Kind: OpALU, Dest: 1, Lat: 1},
		{PC: 2, Kind: OpALU, Dest: 2, Src1: 1, Lat: 1},
		{PC: 3, Kind: OpALU, Dest: 3, Src1: 2, Lat: 1},
	}
	p := &fakePort{latency: 5}
	c := New(0, testCfg(), &sliceStream{ops: ops}, p, Hooks{})
	runCore(c, p, 50)
	if c.Stats.Committed != 3 {
		t.Fatalf("committed %d, want 3", c.Stats.Committed)
	}
	if c.ROBOccupancy() != 0 {
		t.Fatal("ROB not empty after commit")
	}
}

func TestLoadDependencyBlocksConsumer(t *testing.T) {
	var commitOrder []uint64
	ops := []MicroOp{
		{PC: 10, Kind: OpLoad, Dest: 1, Addr: 0x40},
		{PC: 11, Kind: OpALU, Dest: 2, Src1: 1, Lat: 1},
		{PC: 12, Kind: OpALU, Dest: 3, Lat: 1}, // independent
	}
	p := &fakePort{latency: 20}
	hooks := Hooks{OnLoadRetire: func(pc uint64, stall sim.Cycle, miss bool) {
		commitOrder = append(commitOrder, pc)
	}}
	c := New(0, testCfg(), &sliceStream{ops: ops}, p, hooks)
	runCore(c, p, 100)
	if c.Stats.Committed != 3 {
		t.Fatalf("committed %d, want 3", c.Stats.Committed)
	}
	// The independent ALU op finished early but must still commit after the
	// load (in-order commit).
	if c.Stats.StallCycles == 0 {
		t.Fatal("long-latency load at ROB head recorded no stall cycles")
	}
	if c.Stats.LoadStallCyc == 0 {
		t.Fatal("stall cycles not attributed to the load")
	}
}

func TestStallAttributionMagnitude(t *testing.T) {
	var gotStall sim.Cycle
	ops := []MicroOp{{PC: 10, Kind: OpLoad, Dest: 1, Addr: 0x40}}
	p := &fakePort{latency: 30}
	hooks := Hooks{OnLoadRetire: func(pc uint64, stall sim.Cycle, miss bool) {
		gotStall = stall
	}}
	c := New(0, testCfg(), &sliceStream{ops: ops}, p, hooks)
	runCore(c, p, 100)
	// The load dispatches at cycle 0, issues ~1, completes ~31; head stall
	// should be within a few cycles of the memory latency.
	if gotStall < 25 || gotStall > 35 {
		t.Fatalf("attributed stall = %d, want ~30", gotStall)
	}
}

func TestIsCriticalConsultedPerLoad(t *testing.T) {
	asked := map[uint64]int{}
	ops := []MicroOp{
		{PC: 100, Kind: OpLoad, Dest: 1, Addr: 0x40},
		{PC: 101, Kind: OpLoad, Dest: 2, Addr: 0x80},
	}
	p := &fakePort{latency: 3}
	hooks := Hooks{IsCritical: func(pc uint64) bool {
		asked[pc]++
		return pc == 100
	}}
	c := New(0, testCfg(), &sliceStream{ops: ops}, p, hooks)
	runCore(c, p, 50)
	if asked[100] != 1 || asked[101] != 1 {
		t.Fatalf("IsCritical calls = %v, want one per load", asked)
	}
}

func TestStoreRetiresThroughWriteBuffer(t *testing.T) {
	ops := []MicroOp{
		{PC: 1, Kind: OpStore, Addr: 0x40},
		{PC: 2, Kind: OpALU, Dest: 1, Lat: 1},
	}
	p := &fakePort{latency: 100}
	c := New(0, testCfg(), &sliceStream{ops: ops}, p, Hooks{})
	runCore(c, p, 20)
	if c.Stats.Committed != 2 {
		t.Fatalf("committed %d, want 2 (stores must not wait on memory)", c.Stats.Committed)
	}
	if p.stores != 1 {
		t.Fatalf("port saw %d stores, want 1", p.stores)
	}
}

func TestPortRefusalRetries(t *testing.T) {
	ops := []MicroOp{{PC: 1, Kind: OpLoad, Dest: 1, Addr: 0x40}}
	p := &fakePort{latency: 2, refuseN: 3}
	c := New(0, testCfg(), &sliceStream{ops: ops}, p, Hooks{})
	runCore(c, p, 50)
	if c.Stats.Committed != 1 {
		t.Fatal("refused load never retried to completion")
	}
	if p.loads != 1 {
		t.Fatalf("port accepted %d loads, want exactly 1", p.loads)
	}
}

func TestLQLimitsInFlightLoads(t *testing.T) {
	var ops []MicroOp
	for i := 0; i < 12; i++ {
		ops = append(ops, MicroOp{PC: uint64(100 + i), Kind: OpLoad,
			Dest: RegID(8 + i%4), Addr: uint64(0x1000 + i*64)})
	}
	p := &fakePort{latency: 30}
	c := New(0, testCfg(), &sliceStream{ops: ops}, p, Hooks{})
	runCore(c, p, 300)
	if c.Stats.Committed != 12 {
		t.Fatalf("committed %d, want 12", c.Stats.Committed)
	}
	if p.maxInFly > testCfg().LQSize {
		t.Fatalf("in-flight loads peaked at %d, above LQSize %d", p.maxInFly, testCfg().LQSize)
	}
}

func TestReqEndHook(t *testing.T) {
	var gotID uint64
	var gotAt sim.Cycle
	ops := []MicroOp{
		{PC: 1, Kind: OpALU, Dest: 1, Lat: 1},
		{PC: 2, Kind: OpALU, Src1: 1, Lat: 1, Flags: FlagReqEnd, ReqID: 77},
	}
	p := &fakePort{latency: 1}
	hooks := Hooks{OnReqEnd: func(id uint64, now sim.Cycle) { gotID, gotAt = id, now }}
	c := New(0, testCfg(), &sliceStream{ops: ops}, p, hooks)
	runCore(c, p, 20)
	if gotID != 77 || gotAt == 0 {
		t.Fatalf("OnReqEnd = (%d, %d), want id 77 at a positive cycle", gotID, gotAt)
	}
}

func TestIdleAccounting(t *testing.T) {
	p := &fakePort{latency: 1}
	c := New(0, testCfg(), &sliceStream{}, p, Hooks{})
	runCore(c, p, 10)
	if c.Stats.IdleCycles == 0 {
		t.Fatal("empty stream recorded no idle cycles")
	}
	if c.IPC(10) != 0 {
		t.Fatal("IPC of idle core should be 0")
	}
}

func TestROBFullBackPressure(t *testing.T) {
	// One never-completing load (huge latency) followed by many ALU ops:
	// dispatch must stop at ROB capacity.
	ops := []MicroOp{{PC: 1, Kind: OpLoad, Dest: 1, Addr: 0x40}}
	for i := 0; i < 40; i++ {
		ops = append(ops, MicroOp{PC: uint64(2 + i), Kind: OpALU, Dest: 2, Lat: 1})
	}
	p := &fakePort{latency: 1000}
	c := New(0, testCfg(), &sliceStream{ops: ops}, p, Hooks{})
	runCore(c, p, 100)
	if c.ROBOccupancy() != testCfg().ROBSize {
		t.Fatalf("ROB occupancy = %d, want full (%d)", c.ROBOccupancy(), testCfg().ROBSize)
	}
	if c.Stats.DispatchStall == 0 {
		t.Fatal("no dispatch stalls recorded with a full ROB")
	}
	if c.Stats.Committed != 0 {
		t.Fatal("nothing should commit past an incomplete ROB head")
	}
}

// TestDeterminism: identical inputs give identical statistics.
func TestCoreDeterminism(t *testing.T) {
	mk := func() *Core {
		var ops []MicroOp
		for i := 0; i < 100; i++ {
			k := OpALU
			if i%3 == 0 {
				k = OpLoad
			}
			ops = append(ops, MicroOp{PC: uint64(i), Kind: k,
				Dest: RegID(1 + i%8), Src1: RegID(i % 4), Addr: uint64(i * 64)})
		}
		p := &fakePort{latency: 7}
		c := New(0, testCfg(), &sliceStream{ops: ops}, p, Hooks{})
		runCore(c, p, 500)
		return c
	}
	a, b := mk(), mk()
	if a.Stats != b.Stats {
		t.Fatalf("diverging stats:\n%+v\n%+v", a.Stats, b.Stats)
	}
}

func TestALUMaxLatencyWheel(t *testing.T) {
	// Latency 255 exercises the timing wheel's widest slot distance.
	ops := []MicroOp{{PC: 1, Kind: OpALU, Dest: 1, Lat: 255}}
	p := &fakePort{latency: 1}
	c := New(0, testCfg(), &sliceStream{ops: ops}, p, Hooks{})
	runCore(c, p, 300)
	if c.Stats.Committed != 1 {
		t.Fatal("max-latency ALU op never completed")
	}
}

func TestRegisterOverwrite(t *testing.T) {
	// Two writers of r1: the consumer must wake on the *latest* writer.
	ops := []MicroOp{
		{PC: 1, Kind: OpALU, Dest: 1, Lat: 1},
		{PC: 2, Kind: OpLoad, Dest: 1, Addr: 0x40}, // overwrites r1, slow
		{PC: 3, Kind: OpALU, Dest: 2, Src1: 1, Lat: 1},
	}
	p := &fakePort{latency: 40}
	c := New(0, testCfg(), &sliceStream{ops: ops}, p, Hooks{})
	p.core = c
	// After 20 cycles the load is still outstanding: the consumer must not
	// have committed (it depends on the load, not the first ALU write).
	for now := sim.Cycle(0); now < 20; now++ {
		p.tick(now)
		c.Tick(now)
	}
	if c.Stats.Committed > 2 {
		t.Fatal("consumer committed against a stale register value")
	}
	for now := sim.Cycle(20); now < 100; now++ {
		p.tick(now)
		c.Tick(now)
	}
	if c.Stats.Committed != 3 {
		t.Fatalf("committed %d, want 3", c.Stats.Committed)
	}
}

// resumableStream returns false for a while, then produces ops: cores must
// tolerate sources that go idle and come back (open-loop LC behaviour).
type resumableStream struct {
	idleUntil int
	calls     int
	produced  int
}

func (s *resumableStream) Next(op *MicroOp) bool {
	s.calls++
	if s.calls < s.idleUntil || s.produced >= 5 {
		return false
	}
	s.produced++
	*op = MicroOp{PC: uint64(s.produced), Kind: OpALU, Dest: 1, Lat: 1}
	return true
}

func TestStreamResumesAfterIdle(t *testing.T) {
	p := &fakePort{latency: 1}
	c := New(0, testCfg(), &resumableStream{idleUntil: 50}, p, Hooks{})
	runCore(c, p, 200)
	if c.Stats.Committed != 5 {
		t.Fatalf("committed %d after stream resumed, want 5", c.Stats.Committed)
	}
	if c.Stats.IdleCycles == 0 {
		t.Fatal("idle period not accounted")
	}
}

func TestCommitWidthBound(t *testing.T) {
	var ops []MicroOp
	for i := 0; i < 8; i++ {
		ops = append(ops, MicroOp{PC: uint64(i), Kind: OpALU, Dest: RegID(1 + i%4), Lat: 1})
	}
	p := &fakePort{latency: 1}
	cfg := testCfg()
	cfg.CommitWidth = 1
	c := New(0, cfg, &sliceStream{ops: ops}, p, Hooks{})
	p.core = c
	prev := uint64(0)
	for now := sim.Cycle(0); now < 40; now++ {
		p.tick(now)
		c.Tick(now)
		if c.Stats.Committed-prev > 1 {
			t.Fatalf("committed %d in one cycle with width 1", c.Stats.Committed-prev)
		}
		prev = c.Stats.Committed
	}
	if c.Stats.Committed != 8 {
		t.Fatalf("committed %d, want 8", c.Stats.Committed)
	}
}
