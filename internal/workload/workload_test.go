package workload

import (
	"testing"
	"testing/quick"

	"pivot/internal/cpu"
	"pivot/internal/sim"
)

func TestCatalogueComplete(t *testing.T) {
	lc := LCApps()
	for _, name := range LCNames() {
		p, ok := lc[name]
		if !ok {
			t.Fatalf("LC app %q missing from catalogue", name)
		}
		if p.ChaseDepth <= 0 || p.ChaseLines == 0 || p.ChasePCs <= 0 {
			t.Fatalf("%s: degenerate chase parameters %+v", name, p)
		}
		if p.ChaseLines&(p.ChaseLines-1) != 0 {
			t.Fatalf("%s: ChaseLines must be a power of two", name)
		}
	}
	be := BEApps()
	for _, name := range append(BENames(), IBench, StressCopy) {
		p, ok := be[name]
		if !ok {
			t.Fatalf("BE app %q missing from catalogue", name)
		}
		if p.MLP <= 0 || p.PCs <= 0 {
			t.Fatalf("%s: degenerate parameters %+v", name, p)
		}
	}
}

func TestBEStreamShape(t *testing.T) {
	rng := sim.NewRNG(1)
	s := NewBEStream(BEApps()[IBench], 2, rng)
	loads, stores := 0, 0
	var op cpu.MicroOp
	for i := 0; i < 10000; i++ {
		if !s.Next(&op) {
			t.Fatal("BE stream ran dry")
		}
		switch op.Kind {
		case cpu.OpLoad:
			loads++
			if op.Dest == 0 {
				t.Fatal("BE load without destination register")
			}
		case cpu.OpStore:
			stores++
		}
		if op.Kind != cpu.OpALU && op.Addr%LineBytes != 0 {
			t.Fatalf("unaligned address %#x", op.Addr)
		}
	}
	// iBench copies: ~half stores.
	frac := float64(stores) / float64(loads+stores)
	if frac < 0.45 || frac > 0.55 {
		t.Fatalf("iBench store fraction = %.2f, want ~0.5", frac)
	}
}

func TestBEStreamSequentialLocality(t *testing.T) {
	rng := sim.NewRNG(1)
	s := NewBEStream(BEApps()[IBench], 0, rng)
	var op cpu.MicroOp
	var prev uint64
	seq := 0
	n := 0
	for i := 0; i < 1000; i++ {
		s.Next(&op)
		if op.Kind == cpu.OpALU {
			continue
		}
		if prev != 0 && op.Addr == prev+LineBytes {
			seq++
		}
		prev = op.Addr
		n++
	}
	if float64(seq)/float64(n) < 0.9 {
		t.Fatalf("iBench sequentiality = %d/%d, want >90%%", seq, n)
	}
}

func TestBEStreamsDesynchronised(t *testing.T) {
	// Different core slots must start at different stream offsets (the DRAM
	// bank-lockstep bug class).
	a := NewBEStream(BEApps()[IBench], 0, sim.NewRNG(1))
	b := NewBEStream(BEApps()[IBench], 1, sim.NewRNG(2))
	var opA, opB cpu.MicroOp
	a.Next(&opA)
	b.Next(&opB)
	// Not only different bases; the stream *offsets* must differ too.
	offA := opA.Addr - addrBase(0)
	offB := opB.Addr - addrBase(1)
	if offA == offB {
		t.Fatal("two BE streams walk in lockstep")
	}
}

func TestReqGenProgramStructure(t *testing.T) {
	p := LCApps()[Masstree]
	g := NewReqGen(p, 0, sim.NewRNG(3))
	buf := g.Generate(nil, 42)

	if len(buf) != g.OpsPerRequest() {
		t.Fatalf("program length %d != OpsPerRequest %d", len(buf), g.OpsPerRequest())
	}
	last := buf[len(buf)-1]
	if last.Flags&cpu.FlagReqEnd == 0 || last.ReqID != 42 {
		t.Fatal("program does not end with a ReqEnd marker carrying the id")
	}

	// The chase spine: exactly ChaseDepth loads writing and reading reg 1.
	chase := 0
	chaseSet := map[uint64]bool{}
	for _, pc := range g.ChasePCs() {
		chaseSet[pc] = true
	}
	for _, op := range buf {
		if op.Kind == cpu.OpLoad && op.Dest == regChase {
			chase++
			if op.Src1 != regChase {
				t.Fatal("chase load does not depend on the previous chase load")
			}
			if !chaseSet[op.PC] {
				t.Fatal("chase load uses a non-chase PC")
			}
		}
	}
	if chase != p.ChaseDepth {
		t.Fatalf("chase loads = %d, want %d", chase, p.ChaseDepth)
	}

	// Payload loads are register-independent of the chase.
	for _, op := range buf {
		if op.Kind == cpu.OpLoad && op.Dest >= regPayload {
			if op.Src1 != 0 || op.Src2 != 0 {
				t.Fatal("payload load carries register dependences")
			}
		}
	}

	// Stores present and line-aligned.
	stores := 0
	for _, op := range buf {
		if op.Kind == cpu.OpStore {
			stores++
			if op.Addr%LineBytes != 0 {
				t.Fatal("unaligned store")
			}
		}
	}
	if stores != p.StoresPerReq {
		t.Fatalf("stores = %d, want %d", stores, p.StoresPerReq)
	}
}

func TestReqGenStoreBufferRotates(t *testing.T) {
	g := NewReqGen(LCApps()[Silo], 0, sim.NewRNG(3))
	a := g.Generate(nil, 0)
	b := g.Generate(nil, 1)
	firstStore := func(buf []cpu.MicroOp) uint64 {
		for _, op := range buf {
			if op.Kind == cpu.OpStore {
				return op.Addr
			}
		}
		return 0
	}
	if firstStore(a) == firstStore(b) {
		t.Fatal("store buffer does not rotate across requests")
	}
}

func TestReqGenDeterminism(t *testing.T) {
	mk := func() []cpu.MicroOp {
		g := NewReqGen(LCApps()[Xapian], 1, sim.NewRNG(7))
		return g.Generate(nil, 0)
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d differs across identical generators", i)
		}
	}
}

func TestAddressSpacesDisjointProperty(t *testing.T) {
	f := func(c1, c2 uint8) bool {
		a, b := int(c1%16), int(c2%16)
		if a == b {
			return true
		}
		// Core address regions are 8 GiB apart; any generated address stays
		// well inside its region (< 4 GiB of offsets used).
		return addrBase(a) != addrBase(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPCRangesDisjoint(t *testing.T) {
	g0 := NewReqGen(LCApps()[Moses], 0, sim.NewRNG(1))
	g1 := NewReqGen(LCApps()[Moses], 1, sim.NewRNG(1))
	set := map[uint64]bool{}
	for _, pc := range g0.ChasePCs() {
		set[pc] = true
	}
	for _, pc := range g1.ChasePCs() {
		if set[pc] {
			t.Fatal("chase PCs collide across core slots")
		}
	}
}

func TestGraphAnalyticsIsRandomHeavy(t *testing.T) {
	s := NewBEStream(BEApps()[GraphAn], 0, sim.NewRNG(5))
	var op cpu.MicroOp
	var prev uint64
	seq, n := 0, 0
	for i := 0; i < 5000; i++ {
		s.Next(&op)
		if op.Kind == cpu.OpALU {
			continue
		}
		if prev != 0 && op.Addr == prev+LineBytes {
			seq++
		}
		prev = op.Addr
		n++
	}
	frac := float64(seq) / float64(n)
	if frac > 0.4 {
		t.Fatalf("graph analytics sequentiality %.2f, want mostly random (<0.4)", frac)
	}
}

func TestBEComputeRatio(t *testing.T) {
	// In-memory analytics interleaves ALUPerMem compute ops per memory op.
	p := BEApps()[InMemAn]
	s := NewBEStream(p, 0, sim.NewRNG(5))
	var op cpu.MicroOp
	alu, mem := 0, 0
	for i := 0; i < 7000; i++ {
		s.Next(&op)
		if op.Kind == cpu.OpALU {
			alu++
		} else {
			mem++
		}
	}
	ratio := float64(alu) / float64(mem)
	want := float64(p.ALUPerMem)
	if ratio < want*0.9 || ratio > want*1.1 {
		t.Fatalf("compute ratio = %.2f, want ~%.0f", ratio, want)
	}
}

func TestStressCopyMatchesIBenchShape(t *testing.T) {
	// The profiling stressor is a plain memory copy like iBench: all
	// sequential, about half stores, no compute.
	p := BEApps()[StressCopy]
	if p.StreamFrac < 1 || p.ALUPerMem != 0 || p.StoreFrac != 0.5 {
		t.Fatalf("stress task drifted from a pure copy: %+v", p)
	}
}

func TestMicroserviceFootprintSmall(t *testing.T) {
	p := LCApps()[Microservice]
	if p.ChasePCs+p.PayloadPCs > 16 {
		t.Fatalf("microservice static footprint %d too large for the §VII story",
			p.ChasePCs+p.PayloadPCs)
	}
}
