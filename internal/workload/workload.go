// Package workload provides the synthetic instruction-stream generators that
// stand in for the paper's benchmark suites (Table I): the Tailbench
// latency-critical applications (Img-DNN, Moses, Xapian, Silo, Masstree),
// the CloudSuite best-effort applications (Data/Graph/In-memory Analytics),
// and iBench's streaming stressor.
//
// Real binaries cannot run on this simulator, so each generator reproduces
// the properties the paper's experiments actually depend on:
//
//   - LC apps: request-driven service with a per-app dependence structure —
//     a pointer-chase spine of dependent loads (the performance-critical
//     loads that stall the ROB head), payload loads with locality, and
//     compute. This yields the paper's Figure 8 shape (a few static loads
//     cause almost all ROB stall cycles) and realistic load-latency knees.
//   - BE apps: sustained bandwidth demand with per-app locality (streaming
//     row-hit traffic for iBench/DA, random gather for GA, a mix for IA)
//     and memory-level parallelism.
//
// All generators are deterministic given their RNG seed.
package workload

import (
	"pivot/internal/cpu"
	"pivot/internal/sim"
)

// LineBytes is the cache-line size shared with the memory system.
const LineBytes = 64

// LCParams describes a latency-critical application's per-request behaviour.
type LCParams struct {
	Name string

	// ChaseDepth is the number of dependent (pointer-chase) loads per
	// request — the performance-critical spine.
	ChaseDepth int
	// ChaseLines is the chase working-set size in cache lines; sized to miss
	// the LLC for criticality to matter.
	ChaseLines uint64
	// ChasePCs is the number of static PCs the chase loads rotate through
	// (these become the potential-critical set).
	ChasePCs int

	// PayloadLoads is the number of independent payload loads per chase
	// step, drawn from a smaller, mostly cache-resident set.
	PayloadLoads int
	// PayloadLines is the payload working set in lines.
	PayloadLines uint64
	// PayloadSeq makes payload accesses sequential (spatial locality).
	PayloadSeq bool
	// PayloadPCs is the number of static payload-load PCs.
	PayloadPCs int

	// ALUPerStep is compute per chase step (dependent on the chase value).
	ALUPerStep int
	// ALULat is the latency of each ALU op.
	ALULat int

	// StoresPerReq is the number of stores per request (logging, response
	// buffers); stores retire via the write buffer.
	StoresPerReq int
}

// BEParams describes a best-effort application's steady-state behaviour.
type BEParams struct {
	Name string

	// StreamFrac is the fraction of accesses that stream sequentially
	// (row-buffer friendly); the rest are random within RandLines.
	StreamFrac float64
	// StreamLines is the streaming buffer size in lines (wraps around).
	StreamLines uint64
	// RandLines is the random working set in lines.
	RandLines uint64
	// StoreFrac is the fraction of memory ops that are stores (iBench's
	// copy writes as much as it reads).
	StoreFrac float64
	// ALUPerMem is compute ops interleaved per memory op.
	ALUPerMem int
	// MLP is the number of independent in-flight loads the generator
	// sustains (destination registers rotate, no chains).
	MLP int
	// PCs is the static instruction footprint (large for analytics, which
	// is what defeats CBP's small table).
	PCs int
}

// ---- Catalogue -------------------------------------------------------------

// LC application identifiers, following Table I.
const (
	ImgDNN   = "img-dnn"
	Moses    = "moses"
	Xapian   = "xapian"
	Silo     = "silo"
	Masstree = "masstree"

	// Microservice is not in Table I: it models the small-instruction-
	// footprint cloud workloads of §VII's future-work discussion, where
	// PIVOT can skip offline profiling entirely because the online RRBP
	// sees every load without destructive aliasing.
	Microservice = "microservice"
)

// BE application identifiers, following Table I.
const (
	IBench     = "ibench"
	DataAn     = "data-analytics"
	GraphAn    = "graph-analytics"
	InMemAn    = "in-memory-analytics"
	StressCopy = "stress-copy" // the offline-profiling stress BE task
)

// LCApps returns the five Tailbench-like LC application parameter sets. The
// values are calibrated so that run-alone knees, criticality CDFs and
// bandwidth sensitivities reproduce the paper's orderings (see DESIGN.md §1).
func LCApps() map[string]LCParams {
	return map[string]LCParams{
		// Masstree: key-value store; deep tree traversal, large footprint,
		// little compute. Nearly all of its memory traffic is critical.
		Masstree: {
			Name: Masstree, ChaseDepth: 12, ChaseLines: 1 << 19, ChasePCs: 6,
			PayloadLoads: 2, PayloadLines: 1 << 12, PayloadSeq: false, PayloadPCs: 120,
			ALUPerStep: 4, ALULat: 1, StoresPerReq: 4,
		},
		// Silo: in-memory OLTP; moderate chains, more compute per step,
		// record reads that partially spill the LLC.
		Silo: {
			Name: Silo, ChaseDepth: 8, ChaseLines: 1 << 18, ChasePCs: 8,
			PayloadLoads: 3, PayloadLines: 1 << 16, PayloadSeq: false, PayloadPCs: 100,
			ALUPerStep: 10, ALULat: 1, StoresPerReq: 8,
		},
		// Xapian: online search; posting-list scans (sequential payload over
		// an index much larger than the LLC) plus B-tree descent.
		Xapian: {
			Name: Xapian, ChaseDepth: 6, ChaseLines: 1 << 18, ChasePCs: 5,
			PayloadLoads: 8, PayloadLines: 1 << 18, PayloadSeq: true, PayloadPCs: 80,
			ALUPerStep: 6, ALULat: 1, StoresPerReq: 2,
		},
		// Moses: machine translation; frequent hash-table probes over a
		// large phrase table, short chains.
		Moses: {
			Name: Moses, ChaseDepth: 10, ChaseLines: 1 << 19, ChasePCs: 10,
			PayloadLoads: 4, PayloadLines: 1 << 17, PayloadSeq: false, PayloadPCs: 120,
			ALUPerStep: 8, ALULat: 1, StoresPerReq: 4,
		},
		// Img-DNN: inference; weight streaming (sequential payload far
		// beyond the LLC), high compute, shallow chains. Least chase-bound,
		// most bandwidth-hungry.
		ImgDNN: {
			Name: ImgDNN, ChaseDepth: 4, ChaseLines: 1 << 17, ChasePCs: 4,
			PayloadLoads: 10, PayloadLines: 1 << 19, PayloadSeq: true, PayloadPCs: 40,
			ALUPerStep: 16, ALULat: 1, StoresPerReq: 4,
		},
		// Microservice (§VII): a tiny-footprint request handler — short
		// chains over a modest table, a handful of static loads in total.
		Microservice: {
			Name: Microservice, ChaseDepth: 4, ChaseLines: 1 << 16, ChasePCs: 2,
			PayloadLoads: 2, PayloadLines: 1 << 12, PayloadSeq: false, PayloadPCs: 6,
			ALUPerStep: 6, ALULat: 1, StoresPerReq: 2,
		},
	}
}

// BEApps returns the best-effort application parameter sets.
func BEApps() map[string]BEParams {
	return map[string]BEParams{
		// iBench: each thread sequentially copies one private 64 MB buffer
		// to another — equal read and write streams, maximal row locality.
		IBench: {
			Name: IBench, StreamFrac: 1.0, StreamLines: 1 << 20, RandLines: 0,
			StoreFrac: 0.5, ALUPerMem: 0, MLP: 8, PCs: 8,
		},
		// Data analytics (Bayes classification): sequential dataset scan
		// with per-record compute.
		DataAn: {
			Name: DataAn, StreamFrac: 0.9, StreamLines: 1 << 20, RandLines: 1 << 16,
			StoreFrac: 0.1, ALUPerMem: 4, MLP: 6, PCs: 200,
		},
		// Graph analytics (PageRank): random gathers over a large vertex
		// array — row-buffer hostile, high MLP.
		GraphAn: {
			Name: GraphAn, StreamFrac: 0.2, StreamLines: 1 << 18, RandLines: 1 << 20,
			StoreFrac: 0.1, ALUPerMem: 2, MLP: 10, PCs: 150,
		},
		// In-memory analytics (collaborative filtering): blend of streaming
		// factors and random rating lookups.
		InMemAn: {
			Name: InMemAn, StreamFrac: 0.5, StreamLines: 1 << 19, RandLines: 1 << 18,
			StoreFrac: 0.2, ALUPerMem: 6, MLP: 6, PCs: 250,
		},
		// The offline-profiling stress task (§V-B): a plain memory-copy
		// workload, identical for every LC task.
		StressCopy: {
			Name: StressCopy, StreamFrac: 1.0, StreamLines: 1 << 20, RandLines: 0,
			StoreFrac: 0.5, ALUPerMem: 0, MLP: 8, PCs: 4,
		},
	}
}

// LCNames lists the LC apps in the paper's presentation order.
func LCNames() []string { return []string{ImgDNN, Moses, Xapian, Silo, Masstree} }

// BENames lists the CloudSuite BE apps (excluding iBench and the stressor).
func BENames() []string { return []string{DataAn, GraphAn, InMemAn} }

// pcBase gives distinct static-PC ranges to distinct generator instances so
// profilers can tell apps apart.
func pcBase(slot int) uint64 { return 0x400000 + uint64(slot)<<24 }

// addrBase gives each core a private physical region; BE threads touch
// different regions so they contend only for bandwidth, not for lines.
func addrBase(core int) uint64 { return uint64(core+1) << 33 }

var _ cpu.Stream = (*BEStream)(nil)

// BEStream is an endless best-effort instruction stream.
type BEStream struct {
	p    BEParams
	rng  *sim.RNG
	base uint64
	pcs  []uint64

	streamPos uint64
	aluLeft   int
	destRot   uint8
	pending   cpu.MicroOp
	hasPend   bool
}

// NewBEStream builds a BE stream for the given core slot. The streaming
// cursor starts at a random offset so co-located copies do not walk DRAM
// banks in lockstep (which would serialise the whole channel on one bank).
func NewBEStream(p BEParams, core int, rng *sim.RNG) *BEStream {
	s := &BEStream{p: p, rng: rng, base: addrBase(core)}
	if p.StreamLines > 0 {
		s.streamPos = rng.Uint64n(p.StreamLines)
	}
	s.pcs = make([]uint64, p.PCs)
	for i := range s.pcs {
		s.pcs[i] = pcBase(core) + uint64(i)*4
	}
	return s
}

// Next implements cpu.Stream.
func (s *BEStream) Next(op *cpu.MicroOp) bool {
	if s.aluLeft > 0 {
		s.aluLeft--
		*op = cpu.MicroOp{
			PC:   s.pcs[s.rng.Intn(len(s.pcs))],
			Kind: cpu.OpALU, Dest: cpu.RegID(1 + s.destRot%8), Lat: 1,
		}
		s.destRot++
		return true
	}
	s.aluLeft = s.p.ALUPerMem

	var addr uint64
	if s.p.StreamFrac >= 1 || s.rng.Float64() < s.p.StreamFrac {
		addr = s.base + (s.streamPos%s.p.StreamLines)*LineBytes
		s.streamPos++
	} else {
		addr = s.base + (1 << 28) + s.rng.Uint64n(s.p.RandLines)*LineBytes
	}

	kind := cpu.OpLoad
	if s.p.StoreFrac > 0 && s.rng.Float64() < s.p.StoreFrac {
		kind = cpu.OpStore
	}
	// Rotate destinations so loads are independent (high MLP).
	dest := cpu.RegID(0)
	if kind == cpu.OpLoad {
		dest = cpu.RegID(8 + int(s.destRot)%s.p.MLP)
		s.destRot++
	}
	*op = cpu.MicroOp{
		PC:   s.pcs[s.rng.Intn(len(s.pcs))],
		Kind: kind, Dest: dest, Addr: addr,
	}
	return true
}
