package workload

import (
	"pivot/internal/cpu"
	"pivot/internal/load"
	"pivot/internal/sim"
)

// Register conventions for generated request programs.
const (
	regChase   cpu.RegID = 1 // pointer-chase chain register
	regALUBase cpu.RegID = 2 // rotating compute destinations
	regPayload cpu.RegID = 16
)

// ReqGen expands an LCParams description into the micro-op program of one
// request. The key structural property is the chase spine: each chase load's
// source register is the previous chase load's destination, so the loads
// serialise and stall the ROB head when they miss — these are the
// performance-critical loads PIVOT exists to find.
type ReqGen struct {
	p    LCParams
	rng  *sim.RNG
	base uint64

	chasePCs   []uint64
	payloadPCs []uint64
	storePCs   []uint64
	aluPCs     []uint64
	endPC      uint64

	seqPos   uint64 // sequential payload cursor
	storePos uint64 // response-buffer cursor

	// Zipf-skewed payload population (nil = uniform, the historical
	// behaviour). The samplers are derived constants, not mutable state —
	// they never appear in ReqGenState.
	zipfLines *load.Zipf
	zipfPCs   *load.Zipf
}

// NewReqGen builds a generator for core slot core.
func NewReqGen(p LCParams, core int, rng *sim.RNG) *ReqGen {
	g := &ReqGen{p: p, rng: rng, base: addrBase(core)}
	pc := pcBase(core)
	alloc := func(n int) []uint64 {
		out := make([]uint64, n)
		for i := range out {
			out[i] = pc
			pc += 4
		}
		return out
	}
	g.chasePCs = alloc(max(1, p.ChasePCs))
	g.payloadPCs = alloc(max(1, p.PayloadPCs))
	g.storePCs = alloc(max(1, p.StoresPerReq))
	g.aluPCs = alloc(max(1, p.ALUPerStep))
	g.endPC = pc
	return g
}

// SetZipf skews the payload population: payload line addresses and payload
// PCs are drawn Zipfian with skew theta in (0, 1) instead of uniformly, so
// a few lines/PCs become hot — the datacenter key-popularity pattern. theta
// <= 0 keeps the historical uniform draws (and their exact RNG stream).
// Call before the first Generate.
func (g *ReqGen) SetZipf(theta float64) {
	if theta <= 0 {
		g.zipfLines, g.zipfPCs = nil, nil
		return
	}
	g.zipfLines = load.NewZipf(g.p.PayloadLines, theta)
	g.zipfPCs = load.NewZipf(uint64(len(g.payloadPCs)), theta)
}

// ChasePCs exposes the static chase-load PCs (tests verify the profiler
// recovers exactly these).
func (g *ReqGen) ChasePCs() []uint64 { return g.chasePCs }

// OpsPerRequest returns the program length of one request.
func (g *ReqGen) OpsPerRequest() int {
	perStep := 1 + g.p.ALUPerStep + g.p.PayloadLoads
	return g.p.ChaseDepth*perStep + g.p.StoresPerReq + 1
}

// Generate appends one request's program to buf and returns it. The final op
// carries FlagReqEnd with the given reqID.
func (g *ReqGen) Generate(buf []cpu.MicroOp, reqID uint64) []cpu.MicroOp {
	p := g.p
	chaseMask := p.ChaseLines - 1 // params use power-of-two line counts
	for step := 0; step < p.ChaseDepth; step++ {
		// Chase load: depends on the previous chase load.
		addr := g.base + (g.rng.Uint64()&chaseMask)*LineBytes
		buf = append(buf, cpu.MicroOp{
			PC:   g.chasePCs[step%len(g.chasePCs)],
			Kind: cpu.OpLoad, Dest: regChase, Src1: regChase, Addr: addr,
		})
		// Compute dependent on the chase value.
		for a := 0; a < p.ALUPerStep; a++ {
			buf = append(buf, cpu.MicroOp{
				PC:   g.aluPCs[a%len(g.aluPCs)],
				Kind: cpu.OpALU, Dest: regALUBase + cpu.RegID(a%8),
				Src1: regChase, Lat: uint8(max(1, p.ALULat)),
			})
		}
		// Payload loads: registerwise independent — their addresses are
		// computable early (scan cursors, table bases), so out-of-order
		// execution hides their latency behind the chase spine and behind
		// each other. These are the paper's *non-critical* loads: they still
		// gate request completion through in-order commit, but their
		// ROB-head stalls stay short because many are in flight at once.
		for l := 0; l < p.PayloadLoads; l++ {
			var paddr uint64
			if p.PayloadSeq {
				paddr = g.base + (1 << 30) + (g.seqPos%p.PayloadLines)*LineBytes
				g.seqPos++
			} else if g.zipfLines != nil {
				paddr = g.base + (1 << 30) + g.zipfLines.Next(g.rng)*LineBytes
			} else {
				paddr = g.base + (1 << 30) + g.rng.Uint64n(p.PayloadLines)*LineBytes
			}
			var pcIdx int
			if g.zipfPCs != nil {
				pcIdx = int(g.zipfPCs.Next(g.rng))
			} else {
				pcIdx = g.rng.Intn(len(g.payloadPCs))
			}
			buf = append(buf, cpu.MicroOp{
				PC:   g.payloadPCs[pcIdx],
				Kind: cpu.OpLoad, Dest: regPayload + cpu.RegID(l%8),
				Addr: paddr,
			})
		}
	}
	// Response writes: each request appends to a rotating response buffer,
	// so store traffic continuously misses and reaches DRAM (real servers
	// serialise responses into fresh buffer space).
	for s := 0; s < p.StoresPerReq; s++ {
		buf = append(buf, cpu.MicroOp{
			PC:   g.storePCs[s%len(g.storePCs)],
			Kind: cpu.OpStore, Src1: regChase,
			Addr: g.base + (1 << 31) + (g.storePos%(1<<16))*LineBytes,
		})
		g.storePos++
	}
	// Completion marker: depends on the final chase value so it commits only
	// after the request's critical path resolves.
	buf = append(buf, cpu.MicroOp{
		PC: g.endPC, Kind: cpu.OpALU, Src1: regChase, Lat: 1,
		Flags: cpu.FlagReqEnd, ReqID: reqID,
	})
	return buf
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
