package workload

import "pivot/internal/cpu"

// ReqGenState is the serialisable form of a ReqGen: the private RNG cursor
// plus the two address cursors. The PC layout and parameters are rebuilt from
// configuration.
type ReqGenState struct {
	RNG      uint64
	SeqPos   uint64
	StorePos uint64
}

// SnapshotState captures the generator's complete mutable state.
func (g *ReqGen) SnapshotState() ReqGenState {
	s := ReqGenState{SeqPos: g.seqPos, StorePos: g.storePos}
	if g.rng != nil {
		s.RNG = g.rng.State()
	}
	return s
}

// RestoreState overwrites the generator's mutable state from a snapshot taken
// on an identically configured generator.
func (g *ReqGen) RestoreState(s ReqGenState) {
	if g.rng != nil {
		g.rng.SetState(s.RNG)
	}
	g.seqPos = s.SeqPos
	g.storePos = s.StorePos
}

// BEStreamState is the serialisable form of a BEStream.
type BEStreamState struct {
	RNG       uint64
	StreamPos uint64
	ALULeft   int
	DestRot   uint8
	Pending   cpu.MicroOp
	HasPend   bool
}

// SnapshotState captures the stream's complete mutable state.
func (s *BEStream) SnapshotState() BEStreamState {
	return BEStreamState{
		RNG:       s.rng.State(),
		StreamPos: s.streamPos,
		ALULeft:   s.aluLeft,
		DestRot:   s.destRot,
		Pending:   s.pending,
		HasPend:   s.hasPend,
	}
}

// RestoreState overwrites the stream's mutable state from a snapshot taken on
// an identically configured stream.
func (s *BEStream) RestoreState(st BEStreamState) {
	s.rng.SetState(st.RNG)
	s.streamPos = st.StreamPos
	s.aluLeft = st.ALULeft
	s.destRot = st.DestRot
	s.pending = st.Pending
	s.hasPend = st.HasPend
}
