package load

import (
	"math"

	"pivot/internal/sim"
)

// Model is one task's executable arrival process. A model is single-owner
// mutable state (its RNG and modulator cursors advance as arrivals are
// drawn); the load generator owns it and is the only caller.
type Model interface {
	// Closed reports a closed-loop model: arrivals are driven by request
	// completion, not by time, and NextArrival is never called.
	Closed() bool

	// NextArrival returns the arrival instant following prev (the arrival
	// most recently returned; the first call receives prev == 0 and draws
	// the first arrival from cycle 0). ok == false means the process has
	// ceased forever — no further arrivals exist and the caller may report
	// sim.NeverWork to the skip-ahead engine.
	NextArrival(prev sim.Cycle) (next sim.Cycle, ok bool)

	// Rate reports the instantaneous arrival rate at now in requests per
	// cycle, for telemetry. It is pure: it never advances the RNG. On-off
	// modulated models report the rate of the most recently resolved
	// modulator state when now lies beyond it.
	Rate(now sim.Cycle) float64

	// Phase is the attribution tag of the most recent arrival: the phase
	// program index, or 0 (on) / 1 (off) for a purely on-off model, or 0
	// for stationary models. Pure.
	Phase() int

	// NumPhases is the number of distinct attribution tags Phase can
	// return (1 for stationary and closed models).
	NumPhases() int

	// SnapshotState captures the model's complete mutable state.
	SnapshotState() ModelState

	// RestoreState overwrites the model's mutable state from a snapshot
	// taken on a model built from the identical Spec.
	RestoreState(ModelState)
}

// ModelState is the serialisable mutable state shared by every model: the
// RNG cursor, the first-arrival flag, the attribution tag, and the on-off
// modulator position. Models without a feature leave its fields zero, so a
// gob-encoded stationary snapshot is byte-identical to a degenerate shaped
// one — the property the stationary-equivalence oracle relies on.
type ModelState struct {
	RNG     uint64
	First   bool
	Phase   int
	On      bool
	OnUntil sim.Cycle
}

// New builds the model described by spec, drawing all randomness from rng.
// The model takes ownership of rng.
func New(spec Spec, rng *sim.RNG) Model {
	if spec.Mean <= 0 {
		return &closedModel{rng: rng}
	}
	if spec.Stationary() {
		return &stationaryModel{rng: rng, mean: spec.Mean}
	}
	return newShaped(spec, rng)
}

// closedModel drives the closed loop: no timed arrivals at all. It still
// owns its RNG fork so the machine's seeding discipline (one fork per
// component, in construction order) is uniform across loop modes.
type closedModel struct {
	rng *sim.RNG
}

func (c *closedModel) Closed() bool { return true }
func (c *closedModel) NextArrival(prev sim.Cycle) (sim.Cycle, bool) {
	return 0, false
}
func (c *closedModel) Rate(now sim.Cycle) float64 { return 0 }
func (c *closedModel) Phase() int                 { return 0 }
func (c *closedModel) NumPhases() int             { return 1 }
func (c *closedModel) SnapshotState() ModelState  { return ModelState{RNG: c.rng.State()} }
func (c *closedModel) RestoreState(st ModelState) { c.rng.SetState(st.RNG) }

// stationaryModel is the refactored historical behaviour: a homogeneous
// Poisson process with the given mean inter-arrival time. The draw sequence
// is pinned bit-identically to the pre-refactor engine: the first arrival
// is Exp(mean) from cycle 0 (no offset), every later gap is Exp(mean)+1 (the
// +1 guarantees forward progress when the mean is tiny).
type stationaryModel struct {
	rng   *sim.RNG
	mean  float64
	first bool // set once the first arrival has been drawn
}

func (m *stationaryModel) Closed() bool { return false }

func (m *stationaryModel) NextArrival(prev sim.Cycle) (sim.Cycle, bool) {
	if !m.first {
		m.first = true
		return sim.Cycle(m.rng.Exp(m.mean)), true
	}
	return prev + sim.Cycle(m.rng.Exp(m.mean)) + 1, true
}

func (m *stationaryModel) Rate(now sim.Cycle) float64 { return 1 / m.mean }
func (m *stationaryModel) Phase() int                 { return 0 }
func (m *stationaryModel) NumPhases() int             { return 1 }

func (m *stationaryModel) SnapshotState() ModelState {
	return ModelState{RNG: m.rng.State(), First: !m.first}
}

func (m *stationaryModel) RestoreState(st ModelState) {
	m.rng.SetState(st.RNG)
	m.first = !st.First
}

// shapedModel realises every non-stationary spec by thinning a max-rate
// Poisson process: candidate arrivals are drawn at the envelope rate
// λmax = maxScale/Mean with the stationary gap law, and each candidate at
// cycle t is accepted with probability scale(t)/maxScale. When that
// probability is exactly 1 the acceptance draw is skipped, so a spec whose
// composite scale is identically 1 consumes the stationary model's exact
// RNG stream.
type shapedModel struct {
	spec     Spec
	rng      *sim.RNG
	candMean float64 // envelope mean inter-arrival: Mean / maxScale
	maxScale float64
	program  uint64    // total phase-program length (0 = no phases)
	ceaseAt  sim.Cycle // rate is zero forever from here on
	ceases   bool

	first   bool // set once the first candidate has been drawn
	phase   int  // attribution tag of the most recent arrival
	on      bool // on-off modulator state
	onUntil sim.Cycle
}

func newShaped(spec Spec, rng *sim.RNG) *shapedModel {
	m := &shapedModel{
		spec:     spec,
		rng:      rng,
		maxScale: spec.MaxScale(),
		program:  spec.programCycles(),
	}
	m.ceaseAt, m.ceases = spec.ceaseCycle()
	if m.maxScale > 0 {
		m.candMean = spec.Mean / m.maxScale
	} else {
		m.ceaseAt, m.ceases = 0, true // degenerate: never any arrivals
	}
	if spec.OnOff.Enabled() {
		m.on = true
		m.onUntil = sim.Cycle(rng.Exp(spec.OnOff.OnMean)) + 1
	}
	return m
}

func (m *shapedModel) Closed() bool { return false }

func (m *shapedModel) NextArrival(prev sim.Cycle) (sim.Cycle, bool) {
	t := prev
	for {
		if !m.first {
			m.first = true
			t = sim.Cycle(m.rng.Exp(m.candMean))
		} else {
			t += sim.Cycle(m.rng.Exp(m.candMean)) + 1
		}
		if m.ceases && t >= m.ceaseAt {
			return 0, false
		}
		p := m.scaleAt(t) / m.maxScale
		if p >= 1 || m.rng.Float64() < p {
			m.phase = m.phaseIndexAt(t)
			return t, true
		}
	}
}

// scaleAt evaluates the composite rate multiplier at cycle t, advancing the
// on-off modulator. NextArrival visits strictly increasing t, so modulator
// sojourns are drawn exactly once each, in order.
func (m *shapedModel) scaleAt(t sim.Cycle) float64 {
	s := m.phaseScaleAt(t) * m.windowFactor(t)
	if m.spec.OnOff.Enabled() {
		for m.onUntil <= t {
			m.on = !m.on
			mean := m.spec.OnOff.OnMean
			if !m.on {
				mean = m.spec.OnOff.OffMean
			}
			m.onUntil += sim.Cycle(m.rng.Exp(mean)) + 1
		}
		if m.on {
			s *= m.spec.OnOff.OnScale
		} else {
			s *= m.spec.OnOff.OffScale
		}
	}
	return s
}

// phaseScaleAt evaluates the phase program's multiplier at t. Pure.
func (m *shapedModel) phaseScaleAt(t sim.Cycle) float64 {
	if len(m.spec.Phases) == 0 {
		return 1
	}
	tau := uint64(t)
	if m.spec.Repeat {
		tau %= m.program
	} else if tau >= m.program {
		return m.spec.Phases[len(m.spec.Phases)-1].terminalScale()
	}
	for _, p := range m.spec.Phases {
		if tau < p.Cycles {
			return p.scaleAt(tau)
		}
		tau -= p.Cycles
	}
	return m.spec.Phases[len(m.spec.Phases)-1].terminalScale() // unreachable
}

func (p Phase) scaleAt(offset uint64) float64 {
	switch p.Shape {
	case ShapeRamp:
		return p.Scale + (p.To-p.Scale)*float64(offset)/float64(p.Cycles)
	case ShapeSine:
		return p.Scale * (1 + p.Amp*math.Sin(2*math.Pi*float64(offset%p.Period)/float64(p.Period)))
	case ShapeOff:
		return 0
	default:
		return p.Scale
	}
}

// windowFactor is 1 while some activity window covers t (or no windows are
// declared), else 0. Pure.
func (m *shapedModel) windowFactor(t sim.Cycle) float64 {
	if len(m.spec.Windows) == 0 {
		return 1
	}
	for _, w := range m.spec.Windows {
		if t >= w.From && t < w.Until {
			return 1
		}
	}
	return 0
}

// phaseIndexAt is the attribution tag for an arrival at t. Pure.
func (m *shapedModel) phaseIndexAt(t sim.Cycle) int {
	if len(m.spec.Phases) > 0 {
		tau := uint64(t)
		if m.spec.Repeat {
			tau %= m.program
		} else if tau >= m.program {
			return len(m.spec.Phases) - 1
		}
		for i, p := range m.spec.Phases {
			if tau < p.Cycles {
				return i
			}
			tau -= p.Cycles
		}
		return len(m.spec.Phases) - 1
	}
	if m.spec.OnOff.Enabled() && !m.on {
		return 1
	}
	return 0
}

func (m *shapedModel) Rate(now sim.Cycle) float64 {
	s := m.phaseScaleAt(now) * m.windowFactor(now)
	if m.spec.OnOff.Enabled() {
		// Report the most recently resolved modulator state; resolving
		// further would consume RNG and perturb the arrival stream.
		if m.on {
			s *= m.spec.OnOff.OnScale
		} else {
			s *= m.spec.OnOff.OffScale
		}
	}
	return s / m.spec.Mean
}

func (m *shapedModel) Phase() int { return m.phase }

func (m *shapedModel) NumPhases() int {
	if n := len(m.spec.Phases); n > 0 {
		return n
	}
	if m.spec.OnOff.Enabled() {
		return 2
	}
	return 1
}

func (m *shapedModel) SnapshotState() ModelState {
	return ModelState{
		RNG:     m.rng.State(),
		First:   !m.first,
		Phase:   m.phase,
		On:      m.on,
		OnUntil: m.onUntil,
	}
}

func (m *shapedModel) RestoreState(st ModelState) {
	m.rng.SetState(st.RNG)
	m.first = !st.First
	m.phase = st.Phase
	m.on = st.On
	m.onUntil = st.OnUntil
}
