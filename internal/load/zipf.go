package load

import (
	"math"

	"pivot/internal/sim"
)

// Zipf samples ranks in [0, n) with a Zipfian popularity distribution of
// skew theta in [0, 1): rank r is drawn with probability proportional to
// 1/(r+1)^theta, so rank 0 is the hottest key. theta == 0 degenerates to
// uniform (but callers should keep the plain uniform draw in that case to
// preserve the historical RNG stream). The sampler is the classic Gray et
// al. construction used by YCSB-style generators: all constants are derived
// from (n, theta) at build time, sampling is one uniform draw, and the
// sampler itself is stateless — it never appears in checkpoint state.
type Zipf struct {
	n     uint64
	theta float64
	alpha float64
	zetan float64
	eta   float64
}

// NewZipf builds a sampler over n ranks with skew theta. It panics on
// theta outside [0, 1) — the scenario validator bounds user input first.
func NewZipf(n uint64, theta float64) *Zipf {
	if theta < 0 || theta >= 1 {
		panic("load: Zipf theta must be in [0, 1)")
	}
	if n == 0 {
		n = 1
	}
	z := &Zipf{n: n, theta: theta}
	z.zetan = zeta(n, theta)
	z.alpha = 1 / (1 - theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - zeta(2, theta)/z.zetan)
	return z
}

// Next draws one rank using a single uniform variate from rng.
func (z *Zipf) Next(rng *sim.RNG) uint64 {
	u := rng.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, z.theta) {
		return 1
	}
	r := uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if r >= z.n {
		r = z.n - 1
	}
	return r
}

// N reports the sampler's rank universe size.
func (z *Zipf) N() uint64 { return z.n }

// zeta is the generalised harmonic number H_{n,theta}.
func zeta(n uint64, theta float64) float64 {
	var sum float64
	for i := uint64(1); i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}
