// Package load defines the declarative load-shape layer: deterministic,
// checkpointable arrival-rate models that drive latency-critical request
// sources. The historical engine hardwired a stationary open/closed-loop
// Poisson process into the load generator; this package hoists that
// assumption into a Spec (base rate plus optional phase curves, on-off
// burst modulation, activity windows and Zipf-skewed request populations)
// and a Model (the executable arrival process).
//
// Every model obeys three contracts the rest of the simulator depends on:
//
//   - Determinism: all randomness flows through one sim.RNG owned by the
//     model, so a given (Spec, seed) pair always produces the identical
//     arrival sequence.
//   - Checkpointability: SnapshotState/RestoreState capture the complete
//     mutable state (RNG cursor plus modulator position), so kill-and-resume
//     is byte-identical.
//   - Skip-ahead exactness: arrivals are drawn eagerly (NextArrival returns
//     the exact cycle of the following arrival), so an idle core can sleep
//     to precisely that instant — rate changes, bursts and churn events are
//     forecastable, never discovered late. This is what keeps the skip-ahead
//     and sharded parallel engines bit-identical to the dense engine.
//
// Non-homogeneous models (phases, on-off) are realised by thinning a
// max-rate Poisson process: candidates arrive at rate λmax and each is
// accepted with probability λ(t)/λmax. A degenerate shape whose rate is
// identically the base rate accepts every candidate without consuming an
// acceptance draw, which makes the shaped path consume the exact RNG stream
// of the stationary model — the property the scenfuzz stationary-equivalence
// oracle pins.
package load

import "pivot/internal/sim"

// Shape selects the rate curve of one phase.
type Shape int

// Phase shapes.
const (
	// ShapeFlat holds the rate at Scale× the base rate for the phase.
	ShapeFlat Shape = iota
	// ShapeRamp moves the rate linearly from Scale× to To× across the phase.
	ShapeRamp
	// ShapeSine oscillates around Scale× with relative amplitude Amp and
	// the given Period — the diurnal pattern, compressed to simulated time.
	ShapeSine
	// ShapeOff silences arrivals for the phase (a departed tenant).
	ShapeOff
)

// Phase is one segment of a piecewise rate program. Cycles is the segment
// length; the meaning of the remaining fields depends on Shape.
type Phase struct {
	Shape  Shape
	Cycles uint64
	Scale  float64 // flat level / ramp start / sine baseline (× base rate)
	To     float64 // ramp end (× base rate)
	Amp    float64 // sine relative amplitude in [0, 1]
	Period uint64  // sine period in cycles
}

// OnOff is a two-state Markov-modulated Poisson process (MMPP-2): sojourn
// times in the on and off states are exponential with the given means, and
// the instantaneous rate is the base rate scaled by the active state's
// scale. The zero value disables modulation.
type OnOff struct {
	OnMean   float64 // mean on-state sojourn, cycles (> 0 enables)
	OffMean  float64 // mean off-state sojourn, cycles (> 0 enables)
	OnScale  float64 // rate multiplier while on
	OffScale float64 // rate multiplier while off
}

// Enabled reports whether the modulator is active.
func (o OnOff) Enabled() bool { return o.OnMean > 0 && o.OffMean > 0 }

// Window is a half-open activity interval [From, Until): the task only
// issues requests while some window is active. A tenant that joins at cycle
// A and departs at cycle B is Window{A, B}; several windows model churn.
type Window struct {
	From  sim.Cycle
	Until sim.Cycle
}

// Spec is the declarative description of one task's load. It is a pure
// value (no pointers), so it formats deterministically with %+v and may be
// embedded in checkpoint fingerprints.
//
// Mean is the base mean inter-arrival time in cycles; Mean <= 0 selects the
// closed loop (a new request the moment the previous one drains), in which
// case every shaping field is ignored. The shaping fields compose
// multiplicatively: rate(t) = phases(t) × onoff(t) × windows(t) / Mean.
type Spec struct {
	Mean      float64
	ZipfTheta float64 // payload-population skew in [0, 1); 0 = uniform
	Phases    []Phase
	Repeat    bool // cycle the phase program forever (else hold the final level)
	OnOff     OnOff
	Windows   []Window
}

// Stationary reports whether the spec carries no rate shaping — the
// refactored historical behaviour. ZipfTheta does not affect arrival times,
// only which lines/PCs a request touches, so a Zipf-only spec is still a
// stationary arrival process.
func (s Spec) Stationary() bool {
	return len(s.Phases) == 0 && !s.OnOff.Enabled() && len(s.Windows) == 0
}

// Shaped reports whether any non-stationary feature (curves, bursts,
// windows, or a skewed population) is in effect.
func (s Spec) Shaped() bool { return !s.Stationary() || s.ZipfTheta > 0 }

// MaxScale returns the supremum of the spec's composite rate multiplier —
// the thinning envelope λmax/λbase. Zero means the spec never generates an
// arrival.
func (s Spec) MaxScale() float64 {
	phase := 1.0
	if len(s.Phases) > 0 {
		phase = 0
		for _, p := range s.Phases {
			if m := p.maxScale(); m > phase {
				phase = m
			}
		}
	}
	mod := 1.0
	if s.OnOff.Enabled() {
		mod = s.OnOff.OnScale
		if s.OnOff.OffScale > mod {
			mod = s.OnOff.OffScale
		}
	}
	return phase * mod
}

func (p Phase) maxScale() float64 {
	switch p.Shape {
	case ShapeRamp:
		if p.To > p.Scale {
			return p.To
		}
		return p.Scale
	case ShapeSine:
		return p.Scale * (1 + p.Amp)
	case ShapeOff:
		return 0
	default:
		return p.Scale
	}
}

// terminalScale is the level a non-repeating program holds after its final
// phase ends.
func (p Phase) terminalScale() float64 {
	switch p.Shape {
	case ShapeRamp:
		return p.To
	case ShapeSine:
		return p.Scale
	case ShapeOff:
		return 0
	default:
		return p.Scale
	}
}

// programCycles is the total length of the phase program.
func (s Spec) programCycles() uint64 {
	var total uint64
	for _, p := range s.Phases {
		total += p.Cycles
	}
	return total
}

// ceaseCycle returns the cycle after which the rate is zero forever, if one
// exists: a window set is exhausted after its last Until, and a
// non-repeating program whose terminal level is zero is silent after its
// last phase.
func (s Spec) ceaseCycle() (sim.Cycle, bool) {
	at := sim.NeverWork
	found := false
	if len(s.Windows) > 0 {
		var last sim.Cycle
		for _, w := range s.Windows {
			if w.Until > last {
				last = w.Until
			}
		}
		at, found = last, true
	}
	if len(s.Phases) > 0 && !s.Repeat && s.Phases[len(s.Phases)-1].terminalScale() == 0 {
		if end := sim.Cycle(s.programCycles()); !found || end < at {
			at, found = end, true
		}
	}
	return at, found
}
