package load

import (
	"testing"

	"pivot/internal/sim"
)

// drawN pulls n arrivals (or stops early if the model ceases).
func drawN(m Model, n int) []sim.Cycle {
	var out []sim.Cycle
	var prev sim.Cycle
	for i := 0; i < n; i++ {
		next, ok := m.NextArrival(prev)
		if !ok {
			break
		}
		out = append(out, next)
		prev = next
	}
	return out
}

// TestStationaryPinsHistoricalDraws pins the stationary model to the
// pre-refactor load generator's exact draw law: first arrival Exp(mean)
// from cycle 0 with no offset, then gaps of Exp(mean)+1.
func TestStationaryPinsHistoricalDraws(t *testing.T) {
	const mean = 1000.0
	m := New(Spec{Mean: mean}, sim.NewRNG(7))
	got := drawN(m, 50)

	ref := sim.NewRNG(7)
	want := sim.Cycle(ref.Exp(mean))
	for i, g := range got {
		if g != want {
			t.Fatalf("arrival %d = %d, want %d (historical formula)", i, g, want)
		}
		want = want + sim.Cycle(ref.Exp(mean)) + 1
	}
}

// TestNeutralShapedMatchesStationary: a shaped spec whose composite scale is
// identically 1 must consume the stationary model's exact RNG stream — the
// contract the scenfuzz stationary-equivalence oracle enforces end to end.
func TestNeutralShapedMatchesStationary(t *testing.T) {
	neutral := Spec{Mean: 800, Phases: []Phase{{Shape: ShapeFlat, Cycles: 10_000, Scale: 1}}, Repeat: true}
	if neutral.Stationary() {
		t.Fatal("setup: the neutral spec must take the shaped path")
	}
	a := New(Spec{Mean: 800}, sim.NewRNG(11))
	b := New(neutral, sim.NewRNG(11))
	ga, gb := drawN(a, 200), drawN(b, 200)
	if len(ga) != len(gb) {
		t.Fatalf("arrival counts differ: %d vs %d", len(ga), len(gb))
	}
	for i := range ga {
		if ga[i] != gb[i] {
			t.Fatalf("arrival %d differs: stationary %d vs neutral shaped %d", i, ga[i], gb[i])
		}
	}
	sa, sb := a.SnapshotState(), b.SnapshotState()
	if sa != sb {
		t.Fatalf("model states diverged: %+v vs %+v", sa, sb)
	}
}

// TestPhaseCurveShapesRate: a half-rate second phase should admit roughly
// half the arrivals of the full-rate first phase.
func TestPhaseCurveShapesRate(t *testing.T) {
	m := New(Spec{
		Mean: 100,
		Phases: []Phase{
			{Shape: ShapeFlat, Cycles: 500_000, Scale: 1},
			{Shape: ShapeFlat, Cycles: 500_000, Scale: 0.5},
		},
	}, sim.NewRNG(3))
	var hi, lo int
	for _, a := range drawN(m, 100_000) {
		if a >= 1_000_000 {
			break
		}
		if a < 500_000 {
			hi++
		} else {
			lo++
		}
	}
	if hi < 4500 || hi > 5500 {
		t.Fatalf("full-rate phase admitted %d, want ~5000", hi)
	}
	ratio := float64(lo) / float64(hi)
	if ratio < 0.4 || ratio > 0.6 {
		t.Fatalf("half-rate/full-rate arrival ratio = %.3f, want ~0.5 (hi=%d lo=%d)", ratio, hi, lo)
	}
}

// TestRampAndSineStayWithinEnvelope: thinning must never emit arrivals at
// more than the declared envelope rate, and the sine curve must modulate.
func TestRampAndSineStayWithinEnvelope(t *testing.T) {
	spec := Spec{
		Mean: 200,
		Phases: []Phase{
			{Shape: ShapeRamp, Cycles: 300_000, Scale: 0.2, To: 1.5},
			{Shape: ShapeSine, Cycles: 600_000, Scale: 1, Amp: 0.8, Period: 200_000},
		},
		Repeat: true,
	}
	m := New(spec, sim.NewRNG(5))
	arr := drawN(m, 50_000)
	if len(arr) < 1000 {
		t.Fatalf("only %d arrivals drawn", len(arr))
	}
	for i := 1; i < len(arr); i++ {
		if arr[i] <= arr[i-1] {
			t.Fatalf("arrivals not strictly increasing at %d: %d then %d", i, arr[i-1], arr[i])
		}
	}
	// Early ramp (scale ~0.2) must be sparser than the ramp's end (~1.5).
	var early, late int
	for _, a := range arr {
		switch {
		case a < 100_000:
			early++
		case a >= 200_000 && a < 300_000:
			late++
		}
	}
	if early >= late {
		t.Fatalf("ramp start admitted %d >= ramp end %d", early, late)
	}
}

// TestOnOffModulates: with a silent off state, arrival gaps must show long
// silences roughly matching the off sojourns.
func TestOnOffModulates(t *testing.T) {
	m := New(Spec{
		Mean:  100,
		OnOff: OnOff{OnMean: 20_000, OffMean: 20_000, OnScale: 1, OffScale: 0},
	}, sim.NewRNG(9))
	arr := drawN(m, 20_000)
	if len(arr) < 500 {
		t.Fatalf("only %d arrivals", len(arr))
	}
	var silences int
	for i := 1; i < len(arr); i++ {
		if arr[i]-arr[i-1] > 5_000 {
			silences++
		}
	}
	if silences < 5 {
		t.Fatalf("found %d long silences, want several off-state sojourns", silences)
	}
	if m.NumPhases() != 2 {
		t.Fatalf("NumPhases = %d, want 2 (on/off)", m.NumPhases())
	}
}

// TestWindowsGateAndCease: arrivals must fall inside declared windows only,
// and the model must report cessation after the last window closes.
func TestWindowsGateAndCease(t *testing.T) {
	m := New(Spec{
		Mean:    500,
		Windows: []Window{{From: 0, Until: 50_000}, {From: 100_000, Until: 150_000}},
	}, sim.NewRNG(13))
	var prev sim.Cycle
	n := 0
	for {
		next, ok := m.NextArrival(prev)
		if !ok {
			break
		}
		in := (next < 50_000) || (next >= 100_000 && next < 150_000)
		if !in {
			t.Fatalf("arrival %d outside every window", next)
		}
		prev = next
		if n++; n > 1_000_000 {
			t.Fatal("model never ceased")
		}
	}
	if n < 50 {
		t.Fatalf("only %d arrivals across two 50k windows at mean 500", n)
	}
	if _, ok := m.NextArrival(prev); ok {
		t.Fatal("ceased model produced another arrival")
	}
}

// TestCeaseOnTerminalZero: a non-repeating program ending in an off phase
// ceases at the program boundary.
func TestCeaseOnTerminalZero(t *testing.T) {
	m := New(Spec{
		Mean: 300,
		Phases: []Phase{
			{Shape: ShapeFlat, Cycles: 30_000, Scale: 1},
			{Shape: ShapeOff, Cycles: 10_000},
		},
	}, sim.NewRNG(17))
	arr := drawN(m, 10_000)
	if len(arr) == 0 || len(arr) >= 10_000 {
		t.Fatalf("expected a finite arrival prefix, got %d", len(arr))
	}
	if last := arr[len(arr)-1]; last >= 30_000 {
		t.Fatalf("arrival %d inside the terminal off phase", last)
	}
}

// TestSnapshotRestoreContinuesIdentically: restoring mid-sequence must
// reproduce the original continuation exactly, for every model kind.
func TestSnapshotRestoreContinuesIdentically(t *testing.T) {
	specs := map[string]Spec{
		"stationary": {Mean: 700},
		"phased": {Mean: 400, Repeat: true, Phases: []Phase{
			{Shape: ShapeFlat, Cycles: 20_000, Scale: 1.2},
			{Shape: ShapeSine, Cycles: 40_000, Scale: 0.8, Amp: 0.5, Period: 10_000},
		}},
		"onoff":   {Mean: 300, OnOff: OnOff{OnMean: 5_000, OffMean: 3_000, OnScale: 1.5, OffScale: 0.2}},
		"windows": {Mean: 600, Windows: []Window{{From: 10_000, Until: 1 << 40}}},
	}
	for name, spec := range specs {
		t.Run(name, func(t *testing.T) {
			m := New(spec, sim.NewRNG(23))
			pre := drawN(m, 100)
			prev := pre[len(pre)-1]
			st := m.SnapshotState()
			cont := func(mm Model) []sim.Cycle {
				var out []sim.Cycle
				p := prev
				for i := 0; i < 100; i++ {
					next, ok := mm.NextArrival(p)
					if !ok {
						break
					}
					out = append(out, next)
					p = next
				}
				return out
			}
			want := cont(m)

			m2 := New(spec, sim.NewRNG(1))
			m2.RestoreState(st)
			got := cont(m2)
			if len(got) != len(want) {
				t.Fatalf("continuation lengths differ: %d vs %d", len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("continuation diverged at %d: %d vs %d", i, got[i], want[i])
				}
			}
		})
	}
}

// TestZipfSkewsPopularity: rank 0 must dominate under strong skew, every
// rank stays in range, and theta has visible effect versus near-uniform.
func TestZipfSkewsPopularity(t *testing.T) {
	const n = 1024
	rng := sim.NewRNG(29)
	z := NewZipf(n, 0.99)
	counts := make([]int, n)
	for i := 0; i < 200_000; i++ {
		r := z.Next(rng)
		if r >= n {
			t.Fatalf("rank %d out of range", r)
		}
		counts[r]++
	}
	if counts[0] < counts[1] || counts[0] < 20*counts[n-1]+1 {
		t.Fatalf("rank 0 drew %d, rank 1 %d, rank %d %d — not Zipfian", counts[0], counts[1], n-1, counts[n-1])
	}
	frac := float64(counts[0]) / 200_000
	if frac < 0.05 {
		t.Fatalf("hottest rank holds only %.3f of draws under theta 0.99", frac)
	}
}

// TestRateReportsShape: the pure Rate accessor tracks the declared curve.
func TestRateReportsShape(t *testing.T) {
	spec := Spec{Mean: 1000, Phases: []Phase{
		{Shape: ShapeFlat, Cycles: 10_000, Scale: 2},
		{Shape: ShapeFlat, Cycles: 10_000, Scale: 0.5},
	}, Repeat: true}
	m := New(spec, sim.NewRNG(31))
	if got := m.Rate(5_000); got != 2.0/1000 {
		t.Fatalf("Rate in phase 0 = %v, want 0.002", got)
	}
	if got := m.Rate(15_000); got != 0.5/1000 {
		t.Fatalf("Rate in phase 1 = %v, want 0.0005", got)
	}
	if got := New(Spec{Mean: 1000}, sim.NewRNG(1)).Rate(0); got != 1.0/1000 {
		t.Fatalf("stationary Rate = %v, want 0.001", got)
	}
	if got := New(Spec{}, sim.NewRNG(1)).Rate(0); got != 0 {
		t.Fatalf("closed-loop Rate = %v, want 0", got)
	}
}
