module pivot

go 1.22
