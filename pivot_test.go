package pivot

import "testing"

// TestStorageBudgetMatchesPaper pins every term of the §IV-E arithmetic and
// the published 1045-bit total.
func TestStorageBudgetMatchesPaper(t *testing.T) {
	b := DefaultStorageBudget()
	if b.SeqRegister != 8 || b.IndexRegister != 5 || b.Comparator != 8 {
		t.Fatalf("per-PE registers %+v drifted from 8+5+8", b)
	}
	if b.ROBCriticalBits != 192 {
		t.Fatalf("ROB bits = %d, want 192", b.ROBCriticalBits)
	}
	if b.RRBPBits != 384 {
		t.Fatalf("RRBP bits = %d, want 384", b.RRBPBits)
	}
	if b.LoadQueueBits != 448 {
		t.Fatalf("load-queue bits = %d, want 448", b.LoadQueueBits)
	}
	if got := b.Total(); got != 1045 {
		t.Fatalf("total = %d bits, want the paper's 1045", got)
	}
}

// TestPublicAPIEndToEnd drives the documented facade exactly as the package
// comment shows: profile, build, run, read the paper's metrics.
func TestPublicAPIEndToEnd(t *testing.T) {
	cfg := KunpengConfig(4)
	apps := LCApps()
	if len(LCNames()) != 5 {
		t.Fatalf("LC catalogue has %d apps, want 5 (Table I)", len(LCNames()))
	}
	pot := ProfileLC(cfg, apps[Silo], 3, 1)
	if len(pot) == 0 {
		t.Fatal("offline profiling returned an empty potential set")
	}
	tasks := []TaskSpec{{Kind: TaskLC, LC: apps[Silo], MeanInterarrival: 5000,
		Potential: pot, Seed: 1}}
	for i := 0; i < 3; i++ {
		tasks = append(tasks, TaskSpec{Kind: TaskBE, BE: BEApps()[IBench], Seed: uint64(10 + i)})
	}
	m := MustNewMachine(cfg, Options{Policy: PolicyPIVOT}, tasks)
	m.Run(100_000, 200_000)
	if m.LCp95(0) == 0 {
		t.Fatal("no tail latency measured")
	}
	if m.BWUtil() <= 0 {
		t.Fatal("no bandwidth measured")
	}
}

// TestManagedAPIEndToEnd exercises the PARTIES/CLITE surface of the facade.
func TestManagedAPIEndToEnd(t *testing.T) {
	cfg := KunpengConfig(4)
	tasks := []TaskSpec{{Kind: TaskLC, LC: LCApps()[Xapian], MeanInterarrival: 6000, Seed: 1}}
	for i := 0; i < 3; i++ {
		tasks = append(tasks, TaskSpec{Kind: TaskBE, BE: BEApps()[GraphAn], Seed: uint64(10 + i)})
	}
	m := MustNewMachine(cfg, Options{Policy: PolicyManaged}, tasks)
	RunManaged(NewCLITE([]uint32{1 << 20}), m, 100_000, 200_000, 25_000)
	if m.LCTasks()[0].Source.Completed() == 0 {
		t.Fatal("managed run completed no requests")
	}
}

func TestPolicyNames(t *testing.T) {
	for pol, want := range map[Policy]string{
		PolicyDefault: "Default", PolicyMBA: "MBA", PolicyMPAM: "MPAM",
		PolicyFullPath: "FullPath", PolicyPIVOT: "PIVOT",
		PolicyCBP: "CBP", PolicyCBPFullPath: "CBP+FullPath", PolicyManaged: "Managed",
	} {
		if pol.String() != want {
			t.Errorf("policy %d = %q, want %q", pol, pol.String(), want)
		}
	}
}
